//! Schedule/fault exploration harness: the mini model checker behind the
//! `explore` binary.
//!
//! The simulator's engine is deterministic, but three of its decisions are
//! *don't-care* points: which runnable node goes first at an equal virtual
//! clock, which of several same-time events targeting **different** nodes
//! applies first, and whether a fast-path skip in `yield_now`/`poll_point`
//! takes the slow detour instead. A correct program must produce the same
//! observable result no matter how those don't-cares are resolved. This
//! module seed-samples perturbations of every such point (via
//! [`mpmd_sim::TraceOracle`] plugged into the engine's `decide()` loop),
//! runs small fixed workloads under each perturbation, and checks a set of
//! invariants that must hold under ANY legal schedule:
//!
//! 1. **Byte-identical reports.** Fault-free runs must serialize to exactly
//!    the same `--json` report bytes under every perturbation and under
//!    both task backends (fibers and threads). With faults on, only the
//!    event-tie class preserves bytes — node-tie and slow-path
//!    perturbations legitimately permute the order in which the global
//!    fault stream is consumed — so the full class falls back to checking
//!    the application-level checksum plus replay fidelity.
//! 2. **Application checksum.** Every workload folds the payloads it
//!    receives into an order-insensitive per-node sum; the per-node sums
//!    are FNV-hashed in node order. This must match the baseline under
//!    every perturbation, faults or not: schedules may reorder wire
//!    traffic, but the reliable layer must still deliver exactly-once.
//! 3. **Zero allocations on the short path.** The alloc-probed
//!    configuration measures the process allocator between a warmup
//!    barrier and the end of the send loop; a perturbed schedule must not
//!    smuggle an allocation into the fast path.
//! 4. **Replay fidelity.** A recorded decision trace, replayed positionally
//!    through a fresh oracle, must reproduce the run byte-for-byte. This is
//!    what makes shrunk failure traces trustworthy as regression seeds.
//!
//! Invariants the sim crate enforces internally on every run — the
//! lock-order witness (kernel→shard), pool generation-tag checks, the
//! event-heap/pool bijection at teardown, and the reliable layer's
//! cumulative-ack monotonicity — surface here as panics, which the sweep
//! catches and reports as violations too.
//!
//! A failing perturbation is shrunk with [`mpmd_sim::shrink`] to a minimal
//! replayable trace; the binary writes these as corpus JSON entries that
//! `sim/tests/explore_corpus/` pins as regression tests.

use mpmd_am::{self as am, CoalesceConfig, NetProfile};
use mpmd_sim::{BackendKind, CostModel, FaultModel, OracleSpec, Sim, TraceOracle};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::runner::{run_jobs, Unit};

/// Handler ids used by the exploration workloads (well clear of the
/// barrier handlers and other bench bins).
const H_PING: am::HandlerId = 150;
const H_PONG: am::HandlerId = 151;
const H_RING: am::HandlerId = 152;
const H_GHOST: am::HandlerId = 153;

/// Workload kernels, sized to finish in milliseconds so a sweep can afford
/// hundreds of perturbed runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Node 0 round-trips a null RMI to node 1 (`rounds` times); the
    /// alloc-probed configuration measures the steady-state send loop.
    NullRmi,
    /// Every node sends one token around a ring then barriers, per round.
    Barrier,
    /// EM3D-style ghost exchange: each node streams `degree` short
    /// messages to both neighbours per round, then barriers.
    Ghost,
}

/// One fixed exploration configuration: a workload plus its environment
/// (node count, fault model, coalescing, alloc probing).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    pub name: &'static str,
    pub workload: Workload,
    pub nodes: usize,
    pub rounds: u64,
    /// Messages per neighbour per round (ghost workload only).
    pub degree: u64,
    /// Uniform drop probability; dup = drop/2, reorder = drop (the
    /// `sweep_faults` convention). `None` runs fault-free.
    pub drop: Option<f64>,
    pub coalesce: bool,
    /// Measure the allocator over the steady-state window on node 0.
    pub alloc_probe: bool,
}

impl Config {
    fn fault_model(&self, seed: u64) -> Option<FaultModel> {
        self.drop.map(|d| FaultModel::uniform(seed, d, d / 2.0, d))
    }
}

/// The fixed configuration set explored by the sweep. Small node counts
/// and round counts keep a single run in the low milliseconds; the
/// coverage comes from the number of *schedules*, not the workload size.
pub fn configs() -> Vec<Config> {
    vec![
        Config {
            name: "null-rmi",
            workload: Workload::NullRmi,
            nodes: 2,
            rounds: 48,
            degree: 0,
            drop: None,
            coalesce: false,
            alloc_probe: true,
        },
        Config {
            name: "barrier-ring",
            workload: Workload::Barrier,
            nodes: 3,
            rounds: 12,
            degree: 0,
            drop: None,
            coalesce: false,
            alloc_probe: false,
        },
        Config {
            name: "ghost-coalesce",
            workload: Workload::Ghost,
            nodes: 4,
            rounds: 6,
            degree: 5,
            drop: None,
            coalesce: true,
            alloc_probe: false,
        },
        Config {
            name: "ghost-faults",
            workload: Workload::Ghost,
            nodes: 3,
            rounds: 4,
            degree: 4,
            drop: Some(0.2),
            coalesce: false,
            alloc_probe: false,
        },
        Config {
            name: "coalesce-faults",
            workload: Workload::Ghost,
            nodes: 3,
            rounds: 4,
            degree: 4,
            drop: Some(0.15),
            coalesce: true,
            alloc_probe: false,
        },
    ]
}

/// Fault-model seed: fixed per config so every perturbation of a config
/// faces the same wire adversary and differences come from scheduling.
const FAULT_SEED: u64 = 0x5EED_F417;

/// The observable outcome of one run, reduced to what the invariants
/// compare.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Canonical report JSON (`Report::to_json` through `serde_json`).
    pub report_json: String,
    /// FNV-1a over the per-node order-insensitive payload sums.
    pub checksum: u64,
    /// Allocations observed over the probed window (probe configs only).
    pub allocs: Option<u64>,
}

/// FNV-1a 64-bit, matching the fingerprint convention in `experiments`.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Run one configuration under an optional schedule oracle and task
/// backend, returning the comparable outcome. Panics inside the run
/// (engine invariants, witness asserts, workload asserts) are caught and
/// returned as `Err` with the panic message.
pub fn run_config(
    cfg: &Config,
    oracle: Option<Box<TraceOracle>>,
    backend: BackendKind,
    probe: Option<fn() -> u64>,
) -> Result<RunOutput, String> {
    let cfg = *cfg;
    let out = catch_unwind(AssertUnwindSafe(move || {
        run_config_inner(&cfg, oracle, backend, probe)
    }));
    out.map_err(|p| {
        p.downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| p.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic payload>")
            .to_string()
    })
}

fn run_config_inner(
    cfg: &Config,
    oracle: Option<Box<TraceOracle>>,
    backend: BackendKind,
    probe: Option<fn() -> u64>,
) -> RunOutput {
    // Per-node payload sums and message counts, collected inside the run.
    let sums: Arc<Vec<AtomicU64>> = Arc::new((0..cfg.nodes).map(|_| AtomicU64::new(0)).collect());
    let alloc_delta = Arc::new(AtomicU64::new(u64::MAX));

    let mut sim = Sim::new(cfg.nodes).backend(backend);
    if let Some(f) = cfg.fault_model(FAULT_SEED) {
        sim = sim.cost_model(CostModel::default().with_faults(f));
    }
    if let Some(o) = oracle {
        sim = sim.schedule_oracle(o);
    }

    let c = *cfg;
    let sums2 = Arc::clone(&sums);
    let delta2 = Arc::clone(&alloc_delta);
    let probe = if cfg.alloc_probe { probe } else { None };
    let report = sim.run(move |ctx| {
        am::init(&ctx, NetProfile::sp_am_splitc());
        am::register_barrier_handlers(&ctx);
        if c.coalesce {
            am::enable_coalescing(&ctx, CoalesceConfig::default());
        }
        match c.workload {
            Workload::NullRmi => null_rmi(&ctx, &c, &sums2, &delta2, probe),
            Workload::Barrier => barrier_ring(&ctx, &c, &sums2),
            Workload::Ghost => ghost(&ctx, &c, &sums2),
        }
    });

    let words: Vec<u64> = sums.iter().map(|a| a.load(Ordering::SeqCst)).collect();
    let allocs = match alloc_delta.load(Ordering::SeqCst) {
        u64::MAX => None,
        d => Some(d),
    };
    RunOutput {
        report_json: serde_json::to_string(&report.to_json()).expect("report serializes"),
        checksum: fnv1a(&words),
        allocs,
    }
}

/// Null-RMI ping/pong. Node 1's ping handler replies with a pong carrying
/// a derived word; node 0 folds pong payloads into its sum. The steady
/// state (second half of the rounds) is the alloc-probed window.
fn null_rmi(
    ctx: &mpmd_sim::Ctx,
    c: &Config,
    sums: &Arc<Vec<AtomicU64>>,
    delta: &Arc<AtomicU64>,
    probe: Option<fn() -> u64>,
) {
    let pongs = Arc::new(AtomicU64::new(0));
    let p2 = Arc::clone(&pongs);
    let s2 = Arc::clone(sums);
    am::register(ctx, H_PING, move |hctx, m| {
        am::endpoint(hctx)
            .to(m.src)
            .handler(H_PONG)
            .args([m.args[0].wrapping_mul(3).wrapping_add(1), 0, 0, 0])
            .send();
    });
    let me = ctx.node();
    am::register(ctx, H_PONG, move |_hctx, m| {
        s2[me].fetch_add(m.args[0], Ordering::SeqCst);
        p2.fetch_add(1, Ordering::SeqCst);
    });
    am::barrier(ctx);
    if ctx.node() == 0 {
        let warmup = c.rounds / 2;
        let mut probe_start = 0u64;
        let ep = am::endpoint(ctx);
        for i in 0..c.rounds {
            if i == warmup {
                if let Some(p) = probe {
                    probe_start = p();
                }
            }
            ep.to(1).handler(H_PING).args([i, 0, 0, 0]).send();
            let want = i + 1;
            let pw = Arc::clone(&pongs);
            am::wait_until(ctx, move || pw.load(Ordering::SeqCst) >= want);
        }
        if let Some(p) = probe {
            delta.store(p() - probe_start, Ordering::SeqCst);
        }
    }
    am::barrier(ctx);
}

/// Token ring with a barrier per round: every node sends one token to its
/// right neighbour, waits for the round's token, then barriers. Stresses
/// node-tie choices (all nodes runnable at equal clocks after release).
fn barrier_ring(ctx: &mpmd_sim::Ctx, c: &Config, sums: &Arc<Vec<AtomicU64>>) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&seen);
    let sums2 = Arc::clone(sums);
    let me = ctx.node();
    am::register(ctx, H_RING, move |_hctx, m| {
        sums2[me].fetch_add(m.args[0], Ordering::SeqCst);
        s2.fetch_add(1, Ordering::SeqCst);
    });
    am::barrier(ctx);
    let n = c.nodes;
    for round in 0..c.rounds {
        am::endpoint(ctx)
            .to((me + 1) % n)
            .handler(H_RING)
            .args([round * n as u64 + me as u64 + 1, 0, 0, 0])
            .send();
        let want = round + 1;
        let sw = Arc::clone(&seen);
        am::wait_until(ctx, move || sw.load(Ordering::SeqCst) >= want);
        am::barrier(ctx);
    }
}

/// EM3D-style ghost exchange: `degree` short messages to each neighbour
/// per round, then a barrier. With coalescing on, sub-messages pack into
/// frames and the per-round barrier exercises flush-at-poll; with faults
/// on, retransmitted frames race those flushes.
fn ghost(ctx: &mpmd_sim::Ctx, c: &Config, sums: &Arc<Vec<AtomicU64>>) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&seen);
    let sums2 = Arc::clone(sums);
    let me = ctx.node();
    am::register(ctx, H_GHOST, move |_hctx, m| {
        sums2[me].fetch_add(m.args[0], Ordering::SeqCst);
        s2.fetch_add(1, Ordering::SeqCst);
    });
    am::barrier(ctx);
    let n = c.nodes;
    let left = (me + n - 1) % n;
    let right = (me + 1) % n;
    // Two distinct neighbours per node requires n >= 3.
    let per_round = 2 * c.degree;
    for round in 0..c.rounds {
        let ep = am::endpoint(ctx);
        for g in 0..c.degree {
            let w = round * 10_000 + g * 100 + me as u64 + 1;
            ep.to(left).handler(H_GHOST).args([w, 0, 0, 0]).send();
            ep.to(right).handler(H_GHOST).args([w + 7, 0, 0, 0]).send();
        }
        let want = (round + 1) * per_round;
        let sw = Arc::clone(&seen);
        am::wait_until(ctx, move || sw.load(Ordering::SeqCst) >= want);
        am::barrier(ctx);
    }
}

/// One confirmed invariant violation, with its shrunk replay trace.
#[derive(Clone, Debug)]
pub struct Violation {
    pub config: &'static str,
    pub backend: &'static str,
    pub spec: OracleSpec,
    /// Shrunk decision trace that still reproduces the failure.
    pub trace: Vec<u32>,
    pub kind: String,
    pub detail: String,
}

impl Violation {
    /// Corpus entry JSON, the format `sim/tests/explore_corpus/` pins.
    pub fn corpus_json(&self) -> serde_json::Value {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("config".to_string(), self.config.to_value());
        m.insert("backend".to_string(), self.backend.to_value());
        m.insert("seed".to_string(), self.spec.seed.to_value());
        m.insert("node_ties".to_string(), self.spec.node_ties.to_value());
        m.insert("event_ties".to_string(), self.spec.event_ties.to_value());
        m.insert("slow_period".to_string(), self.spec.slow_period.to_value());
        m.insert(
            "trace".to_string(),
            serde_json::Value::Array(self.trace.iter().map(|d| d.to_value()).collect()),
        );
        m.insert("kind".to_string(), self.kind.to_value());
        m.insert("note".to_string(), self.detail.to_value());
        serde_json::Value::Object(m)
    }
}

/// Sweep sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Seeded perturbations per (config, oracle-class) pair.
    pub seeds_per_class: usize,
    /// Worker threads for the perturbed runs (the alloc-probed config
    /// always runs its probed baseline sequentially).
    pub jobs: usize,
    /// Replay-fidelity check cadence: every `replay_every`-th seeded run
    /// is re-executed from its recorded trace and compared byte-for-byte.
    pub replay_every: usize,
}

/// Aggregate result of a sweep.
#[derive(Debug, Default)]
pub struct SweepSummary {
    pub configs: usize,
    /// Perturbed runs executed (excludes baselines and replays).
    pub perturbations: usize,
    /// Replay-fidelity re-runs executed.
    pub replays: usize,
    pub violations: Vec<Violation>,
}

/// What a perturbed run must reproduce from the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    /// Byte-identical report JSON (implies identical checksum).
    Bytes,
    /// Identical application checksum only (fault-stream draw order
    /// legitimately differs, so report bytes may too).
    Checksum,
}

/// Outcome of one seeded perturbation, produced on a worker thread and
/// judged on the driver thread.
struct SeedOutcome {
    spec: OracleSpec,
    backend: BackendKind,
    expect: Expect,
    result: Result<RunOutput, String>,
    trace: Vec<u32>,
    /// `Some(ok)` when this run's trace was replayed for fidelity.
    replay_ok: Option<bool>,
}

fn backend_name(b: BackendKind) -> &'static str {
    match b {
        BackendKind::Fibers => "fibers",
        BackendKind::Threads => "threads",
        BackendKind::Auto => "auto",
    }
}

/// Run the full sweep over [`configs`]. `probe` is the binary's counting
/// allocator hook (`None` disables alloc-count invariants, e.g. under the
/// test harness where the counting allocator isn't installed). `log`
/// receives one progress line per config.
pub fn sweep(
    opts: &SweepOptions,
    probe: Option<fn() -> u64>,
    mut log: impl FnMut(String),
) -> SweepSummary {
    let mut summary = SweepSummary::default();
    for cfg in configs() {
        let fault_free = cfg.drop.is_none();
        // Baselines: unperturbed fibers (probed where configured) and
        // threads. Backend identity is itself an invariant.
        let base = match run_config(&cfg, None, BackendKind::Fibers, probe) {
            Ok(b) => b,
            Err(e) => {
                summary.violations.push(Violation {
                    config: cfg.name,
                    backend: "fibers",
                    spec: OracleSpec::full(0),
                    trace: Vec::new(),
                    kind: "baseline-panic".into(),
                    detail: e,
                });
                continue;
            }
        };
        if let Some(a) = base.allocs {
            if a != 0 {
                summary.violations.push(Violation {
                    config: cfg.name,
                    backend: "fibers",
                    spec: OracleSpec::full(0),
                    trace: Vec::new(),
                    kind: "alloc-on-short-path".into(),
                    detail: format!("baseline allocated {a} times in probed window"),
                });
            }
        }
        // Perturbed schedules must keep the short path allocation-free
        // too: run a few full-class perturbations sequentially with the
        // probe live (the parallel sweep below can't probe — the counter
        // is process-global).
        if cfg.alloc_probe && probe.is_some() {
            for s in 0..4u64 {
                let spec = OracleSpec::full(5000 + s);
                let (o, rec) = TraceOracle::seeded(spec);
                summary.perturbations += 1;
                match run_config(&cfg, Some(o), BackendKind::Fibers, probe) {
                    Ok(out) if out.allocs == Some(0) => {}
                    Ok(out) => summary.violations.push(Violation {
                        config: cfg.name,
                        backend: "fibers",
                        spec,
                        trace: rec.decisions(),
                        kind: "alloc-on-short-path".into(),
                        detail: format!(
                            "perturbed schedule allocated {:?} times in probed window",
                            out.allocs
                        ),
                    }),
                    Err(e) => summary.violations.push(Violation {
                        config: cfg.name,
                        backend: "fibers",
                        spec,
                        trace: rec.decisions(),
                        kind: "panic".into(),
                        detail: e,
                    }),
                }
            }
        }
        match run_config(&cfg, None, BackendKind::Threads, None) {
            Ok(t) if t.report_json == base.report_json => {}
            Ok(t) => summary.violations.push(Violation {
                config: cfg.name,
                backend: "threads",
                spec: OracleSpec::full(0),
                trace: Vec::new(),
                kind: "backend-divergence".into(),
                detail: format!(
                    "threads backend report differs from fibers \
                     (checksums {:#x} vs {:#x})",
                    t.checksum, base.checksum
                ),
            }),
            Err(e) => summary.violations.push(Violation {
                config: cfg.name,
                backend: "threads",
                spec: OracleSpec::full(0),
                trace: Vec::new(),
                kind: "baseline-panic".into(),
                detail: e,
            }),
        }

        // Perturbation classes. Event-tie-only perturbations commute with
        // the fault stream (they permute already-drawn events targeting
        // different nodes), so they must preserve bytes even under faults.
        // Full perturbations also reorder node execution and force slow
        // paths, which permutes fault draws: bytes fault-free, checksum
        // under faults.
        let mut plan: Vec<(OracleSpec, BackendKind, Expect)> = Vec::new();
        for s in 0..opts.seeds_per_class as u64 {
            plan.push((
                OracleSpec::event_ties_only(s),
                BackendKind::Fibers,
                Expect::Bytes,
            ));
            plan.push((
                OracleSpec::full(s),
                BackendKind::Fibers,
                if fault_free {
                    Expect::Bytes
                } else {
                    Expect::Checksum
                },
            ));
        }
        // A couple of perturbed runs on the threads backend per config:
        // the oracle must behave identically there.
        for s in 0..2u64 {
            plan.push((
                OracleSpec::full(1000 + s),
                BackendKind::Threads,
                if fault_free {
                    Expect::Bytes
                } else {
                    Expect::Checksum
                },
            ));
        }

        let replay_every = opts.replay_every.max(1);
        let units: Vec<Unit<SeedOutcome>> = plan
            .iter()
            .enumerate()
            .map(|(i, &(spec, backend, expect))| {
                let do_replay = i % replay_every == 0;
                Box::new(move || {
                    let (oracle, rec) = TraceOracle::seeded(spec);
                    let result = run_config(&cfg, Some(oracle), backend, None);
                    let trace = rec.decisions();
                    let replay_ok = match (&result, do_replay) {
                        (Ok(out), true) => {
                            let (o2, _) = TraceOracle::replay(spec, trace.clone());
                            Some(matches!(
                                run_config(&cfg, Some(o2), backend, None),
                                Ok(r2) if r2.report_json == out.report_json
                            ))
                        }
                        _ => None,
                    };
                    SeedOutcome {
                        spec,
                        backend,
                        expect,
                        result,
                        trace,
                        replay_ok,
                    }
                }) as Unit<SeedOutcome>
            })
            .collect();
        let outcomes = run_jobs(units, opts.jobs);

        let mut config_violations = 0usize;
        for o in &outcomes {
            summary.perturbations += 1;
            if o.replay_ok.is_some() {
                summary.replays += 1;
            }
            let failure: Option<(String, String)> = match &o.result {
                Err(e) => Some(("panic".into(), e.clone())),
                Ok(out) => {
                    if o.expect == Expect::Bytes && out.report_json != base.report_json {
                        Some((
                            "report-divergence".into(),
                            format!(
                                "report bytes differ from baseline \
                                 (checksums {:#x} vs {:#x})",
                                out.checksum, base.checksum
                            ),
                        ))
                    } else if out.checksum != base.checksum {
                        Some((
                            "checksum-divergence".into(),
                            format!(
                                "application checksum {:#x} != baseline {:#x}",
                                out.checksum, base.checksum
                            ),
                        ))
                    } else if o.replay_ok == Some(false) {
                        Some((
                            "replay-divergence".into(),
                            "replaying the recorded trace did not reproduce \
                             the run byte-for-byte"
                                .into(),
                        ))
                    } else {
                        None
                    }
                }
            };
            if let Some((kind, detail)) = failure {
                config_violations += 1;
                let shrunk = shrink_failure(&cfg, &base, o);
                summary.violations.push(Violation {
                    config: cfg.name,
                    backend: backend_name(o.backend),
                    spec: o.spec,
                    trace: shrunk,
                    kind,
                    detail,
                });
            }
        }
        summary.configs += 1;
        log(format!(
            "{:16} {:4} perturbations  {:3} replays  {} violations",
            cfg.name,
            outcomes.len(),
            outcomes.iter().filter(|o| o.replay_ok.is_some()).count(),
            config_violations,
        ));
    }
    summary
}

/// Record pinned-schedule corpus entries: for every configuration, the
/// full decision traces of two seeded full-class perturbations. These are
/// known-good schedules — the corpus replay test re-executes each one and
/// asserts the invariant class for its config still holds, so any future
/// engine change that makes one of these schedules observable again fails
/// with a ready-made replayable witness. (Entries with other `kind`s are
/// shrunk traces of bugs the sweep caught; see the module docs.)
pub fn pin_corpus() -> Vec<Violation> {
    let mut out = Vec::new();
    for cfg in configs() {
        for seed in [0u64, 1] {
            let spec = OracleSpec::full(seed);
            let (o, rec) = TraceOracle::seeded(spec);
            let run = run_config(&cfg, Some(o), BackendKind::Fibers, None)
                .expect("pinned schedule must not panic");
            let expect = if cfg.drop.is_none() {
                "byte-identical report"
            } else {
                "identical application checksum"
            };
            out.push(Violation {
                config: cfg.name,
                backend: "fibers",
                spec,
                trace: rec.decisions(),
                kind: "pinned-schedule".into(),
                detail: format!(
                    "known-good schedule; replay must reproduce {expect} \
                     (checksum {:#x})",
                    run.checksum
                ),
            });
        }
    }
    out
}

/// Shrink a failing perturbation to a minimal trace that still violates
/// the same invariant class when replayed.
fn shrink_failure(cfg: &Config, base: &RunOutput, o: &SeedOutcome) -> Vec<u32> {
    let cfg = *cfg;
    let spec = o.spec;
    let backend = o.backend;
    let expect = o.expect;
    let base_json = base.report_json.clone();
    let base_sum = base.checksum;
    mpmd_sim::shrink(o.trace.clone(), |prefix| {
        let (oracle, _) = TraceOracle::replay(spec, prefix.to_vec());
        match run_config(&cfg, Some(oracle), backend, None) {
            Err(_) => true,
            Ok(out) => match expect {
                Expect::Bytes => out.report_json != base_json,
                Expect::Checksum => out.checksum != base_sum,
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every config's unperturbed run is reproducible and backend-neutral
    /// (the sweep asserts this too; this pins it at test granularity).
    #[test]
    fn baselines_are_deterministic_and_backend_invariant() {
        for cfg in configs() {
            let a = run_config(&cfg, None, BackendKind::Fibers, None).unwrap();
            let b = run_config(&cfg, None, BackendKind::Fibers, None).unwrap();
            let t = run_config(&cfg, None, BackendKind::Threads, None).unwrap();
            assert_eq!(
                a.report_json, b.report_json,
                "{} not reproducible",
                cfg.name
            );
            assert_eq!(
                a.report_json, t.report_json,
                "{} backend-divergent",
                cfg.name
            );
            assert_ne!(
                a.checksum, 0,
                "{} produced no application traffic",
                cfg.name
            );
        }
    }

    /// A tiny sweep (few seeds, all configs) must report zero violations.
    #[test]
    fn mini_sweep_is_clean() {
        let opts = SweepOptions {
            seeds_per_class: 3,
            jobs: 2,
            replay_every: 4,
        };
        let s = sweep(&opts, None, |_| {});
        assert_eq!(s.configs, configs().len());
        assert!(s.perturbations >= 3 * 2 * configs().len());
        assert!(s.replays > 0);
        assert!(
            s.violations.is_empty(),
            "mini sweep found violations: {:?}",
            s.violations
        );
    }

    /// Perturbed runs preserve the application checksum even when report
    /// bytes legitimately differ (faults + full perturbation class).
    #[test]
    fn faulty_full_perturbation_preserves_checksum() {
        let cfg = configs()
            .into_iter()
            .find(|c| c.name == "ghost-faults")
            .unwrap();
        let base = run_config(&cfg, None, BackendKind::Fibers, None).unwrap();
        for seed in 0..4 {
            let (o, _) = TraceOracle::seeded(OracleSpec::full(seed));
            let out = run_config(&cfg, Some(o), BackendKind::Fibers, None).unwrap();
            assert_eq!(out.checksum, base.checksum, "seed {seed}");
        }
    }
}

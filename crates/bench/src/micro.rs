//! The Table 4 micro-benchmarks (Figures 2 and 3 of the paper give their
//! pseudo-code).
//!
//! Node 0 is the initiator; node 1 serves in a spin-poll loop, exactly like
//! the paper's averaged ping-pong measurements (10000 iterations there; the
//! simulator is deterministic so far fewer suffice). Components follow the
//! paper's accounting: `Total` is the initiator's wall time per iteration,
//! `Threads` and `Runtime` are the charged thread/runtime costs across both
//! nodes, and `AM = Total − Threads − Runtime`.

use crate::fmt::JsonReport;
use mpmd_am as am;
use mpmd_ccxx as cx;
use mpmd_ccxx::{CallMode, CcxxConfig, CxPtr, MarshalBuf};
use mpmd_sim::{to_us, Bucket, CostModel, Ctx, Sim, Snapshot};
use mpmd_splitc as sc;
use mpmd_splitc::GlobalPtr;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Measured components of one micro-benchmark, per reported unit (one
/// iteration, or one element for the prefetch rows), in µs / counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measured {
    pub total_us: f64,
    pub am_us: f64,
    pub threads_us: f64,
    pub yields: f64,
    pub creates: f64,
    pub syncs: f64,
    pub runtime_us: f64,
    /// Charged time per cost bucket across both nodes, in µs per unit,
    /// indexed by [`Bucket::index`] (the `--json` per-bucket totals).
    pub bucket_us: [f64; mpmd_sim::NUM_BUCKETS],
}

/// JSON form with the per-bucket totals keyed by [`Bucket::label`].
impl JsonReport for Measured {
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)> {
        use serde::Serialize as _;
        vec![
            ("total_us", self.total_us.to_value()),
            ("am_us", self.am_us.to_value()),
            ("threads_us", self.threads_us.to_value()),
            ("yields", self.yields.to_value()),
            ("creates", self.creates.to_value()),
            ("syncs", self.syncs.to_value()),
            ("runtime_us", self.runtime_us.to_value()),
            (
                "bucket_us",
                crate::fmt::bucket_object(|b| self.bucket_us[b.index()].to_value()),
            ),
        ]
    }
}

fn reduce(start: &Snapshot, end: &Snapshot, units: f64) -> Measured {
    let d = start.until(end);
    let t = d.total_stats();
    let total_us = to_us(d.clocks[0]) / units;
    let threads_us =
        (to_us(t.bucket(Bucket::ThreadMgmt)) + to_us(t.bucket(Bucket::ThreadSync))) / units;
    let runtime_us = to_us(t.bucket(Bucket::Runtime)) / units;
    let mut bucket_us = [0.0; mpmd_sim::NUM_BUCKETS];
    for b in Bucket::ALL {
        bucket_us[b.index()] = to_us(t.bucket(b)) / units;
    }
    Measured {
        total_us,
        am_us: total_us - threads_us - runtime_us,
        threads_us,
        yields: t.context_switches as f64 / units,
        creates: t.thread_creates as f64 / units,
        syncs: t.sync_ops as f64 / units,
        runtime_us,
        bucket_us,
    }
}

/// The benchmark context handed to each op: a 20-double region on every
/// node plus ready-made pointers at node 1's copy.
pub struct BenchSetup {
    pub region: u32,
    /// Pointers to the 20 doubles on node 1.
    pub remote: Vec<CxPtr>,
    /// The same, as Split-C global pointers.
    pub remote_sc: Vec<GlobalPtr>,
}

type CcxxOp = Arc<dyn Fn(&Ctx, &BenchSetup) + Send + Sync>;
type ScOp = Arc<dyn Fn(&Ctx, &BenchSetup) + Send + Sync>;

/// Run a CC++ micro-benchmark: `warmup` unmeasured iterations (populating
/// the stub cache and persistent buffers), then `iters` measured ones.
/// `units_per_iter` scales per-element rows.
pub fn measure_ccxx(
    cfg: CcxxConfig,
    cost: CostModel,
    warmup: usize,
    iters: usize,
    units_per_iter: f64,
    op: CcxxOp,
) -> Measured {
    let result: Arc<Mutex<Option<Measured>>> = Arc::new(Mutex::new(None));
    let r2 = Arc::clone(&result);
    let stop = Arc::new(AtomicBool::new(false));
    Sim::new(2).cost_model(cost).run(move |ctx| {
        cx::init(&ctx, cfg.clone());
        let region = cx::alloc_region(&ctx, 20, 1.25);
        let setup = BenchSetup {
            region,
            remote: (0..20)
                .map(|i| CxPtr {
                    node: 1,
                    region,
                    offset: i,
                })
                .collect(),
            remote_sc: Vec::new(),
        };
        cx::barrier(&ctx);
        if ctx.node() == 0 {
            for _ in 0..warmup {
                op(&ctx, &setup);
            }
            let s0 = ctx.snapshot();
            for _ in 0..iters {
                op(&ctx, &setup);
            }
            let s1 = ctx.snapshot();
            *r2.lock() = Some(reduce(&s0, &s1, iters as f64 * units_per_iter));
            stop.store(true, Ordering::Release);
            // Wake the responder's spin loop so it can leave.
            cx::rmi(&ctx, 1, cx::M_NULL, &[], None, CallMode::Simple);
        } else {
            let stop2 = Arc::clone(&stop);
            cx::spin_until(&ctx, move || stop2.load(Ordering::Acquire));
        }
        cx::finalize(&ctx);
    });
    let out = result.lock().expect("benchmark produced no measurement");
    out
}

/// Run a Split-C micro-benchmark (same protocol).
pub fn measure_splitc(warmup: usize, iters: usize, units_per_iter: f64, op: ScOp) -> Measured {
    let result: Arc<Mutex<Option<Measured>>> = Arc::new(Mutex::new(None));
    let r2 = Arc::clone(&result);
    let stop = Arc::new(AtomicBool::new(false));
    Sim::new(2).run(move |ctx| {
        sc::init(&ctx);
        let region = sc::alloc_region(&ctx, 20, 1.25);
        let setup = BenchSetup {
            region,
            remote: Vec::new(),
            remote_sc: (0..20)
                .map(|i| GlobalPtr {
                    node: 1,
                    region,
                    offset: i,
                })
                .collect(),
        };
        sc::barrier(&ctx);
        if ctx.node() == 0 {
            for _ in 0..warmup {
                op(&ctx, &setup);
            }
            let s0 = ctx.snapshot();
            for _ in 0..iters {
                op(&ctx, &setup);
            }
            let s1 = ctx.snapshot();
            *r2.lock() = Some(reduce(&s0, &s1, iters as f64 * units_per_iter));
            stop.store(true, Ordering::Release);
            sc::atomic_rpc(&ctx, 1, sc::ATOMIC_NULL, [0; 3]);
        } else {
            let stop2 = Arc::clone(&stop);
            am::wait_until(&ctx, move || stop2.load(Ordering::Acquire));
        }
        sc::barrier(&ctx);
    });
    let out = result.lock().expect("benchmark produced no measurement");
    out
}

/// One Table 4 row: the CC++ measurement, the Split-C one where the paper
/// has one, and the paper's reported values for comparison.
#[derive(Clone, Debug)]
pub struct Table4Row {
    pub name: &'static str,
    pub cc: Measured,
    pub sc: Option<Measured>,
    /// Paper: CC++ (total, am, threads, runtime).
    pub paper_cc: (f64, f64, f64, f64),
    /// Paper: Split-C (total, am, runtime).
    pub paper_sc: Option<(f64, f64, f64)>,
}

/// JSON form for `--json` output: measured values plus the paper's
/// reference numbers.
impl JsonReport for Table4Row {
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)> {
        use serde::Serialize as _;
        let (t, a, th, rt) = self.paper_cc;
        vec![
            ("name", self.name.to_value()),
            ("cc", self.cc.to_json()),
            (
                "sc",
                match &self.sc {
                    Some(sc) => sc.to_json(),
                    None => serde_json::Value::Null,
                },
            ),
            ("paper_cc_us", [t, a, th, rt].to_value()),
            (
                "paper_sc_us",
                match self.paper_sc {
                    Some((t, a, rt)) => [t, a, rt].to_value(),
                    None => serde_json::Value::Null,
                },
            ),
        ]
    }
}

/// Run the complete micro-benchmark suite with the given iteration count.
pub fn run_table4(iters: usize) -> Vec<Table4Row> {
    run_table4_with(CcxxConfig::tham(), CostModel::default(), iters)
}

/// As [`run_table4`] but against an arbitrary runtime configuration (used
/// by the ablation harness).
pub fn run_table4_with(cfg: CcxxConfig, cost: CostModel, iters: usize) -> Vec<Table4Row> {
    let w = 4; // warm-up iterations
    let cc = |op: CcxxOp, units: f64| measure_ccxx(cfg.clone(), cost.clone(), w, iters, units, op);
    let scm = |op: ScOp, units: f64| measure_splitc(w, iters, units, op);

    let mut rows = Vec::new();

    rows.push(Table4Row {
        name: "0-Word Simple",
        cc: cc(
            Arc::new(|ctx, _s| {
                cx::rmi(ctx, 1, cx::M_NULL, &[], None, CallMode::Simple);
            }),
            1.0,
        ),
        sc: None,
        paper_cc: (67.0, 55.0, 4.0, 8.0),
        paper_sc: None,
    });

    rows.push(Table4Row {
        name: "0-Word",
        cc: cc(
            Arc::new(|ctx, _s| {
                cx::rmi(ctx, 1, cx::M_NULL, &[], None, CallMode::Blocking);
            }),
            1.0,
        ),
        sc: None,
        paper_cc: (77.0, 55.0, 12.0, 10.0),
        paper_sc: None,
    });

    rows.push(Table4Row {
        name: "1-Word",
        cc: cc(
            Arc::new(|ctx, _s| {
                let mut b = MarshalBuf::new();
                b.push(ctx, &7u32);
                cx::rmi(ctx, 1, cx::M_NULL, &[], Some(b), CallMode::Blocking);
            }),
            1.0,
        ),
        sc: None,
        paper_cc: (94.0, 70.0, 12.0, 12.0),
        paper_sc: None,
    });

    rows.push(Table4Row {
        name: "2-Word",
        cc: cc(
            Arc::new(|ctx, _s| {
                let mut b = MarshalBuf::new();
                b.push(ctx, &7u32);
                b.push(ctx, &9u32);
                cx::rmi(ctx, 1, cx::M_NULL, &[], Some(b), CallMode::Blocking);
            }),
            1.0,
        ),
        sc: None,
        paper_cc: (95.0, 70.0, 12.0, 13.0),
        paper_sc: None,
    });

    rows.push(Table4Row {
        name: "0-Word Threaded",
        cc: cc(
            Arc::new(|ctx, _s| {
                cx::rmi(ctx, 1, cx::M_NULL, &[], None, CallMode::Threaded);
            }),
            1.0,
        ),
        sc: None,
        paper_cc: (87.0, 55.0, 21.0, 11.0),
        paper_sc: None,
    });

    rows.push(Table4Row {
        name: "0-Word Atomic",
        cc: cc(
            Arc::new(|ctx, _s| {
                cx::rmi(ctx, 1, cx::M_NULL, &[], None, CallMode::Atomic);
            }),
            1.0,
        ),
        sc: Some(scm(
            Arc::new(|ctx, _s| {
                sc::atomic_rpc(ctx, 1, sc::ATOMIC_NULL, [0; 3]);
            }),
            1.0,
        )),
        paper_cc: (88.0, 55.0, 21.0, 12.0),
        paper_sc: Some((56.0, 53.0, 3.0)),
    });

    rows.push(Table4Row {
        name: "GP 2-Word R/W",
        cc: cc(
            Arc::new(|ctx, s| {
                cx::gp_read(ctx, s.remote[0]);
            }),
            1.0,
        ),
        sc: Some(scm(
            Arc::new(|ctx, s| {
                sc::read(ctx, s.remote_sc[0]);
            }),
            1.0,
        )),
        paper_cc: (92.0, 55.0, 21.0, 16.0),
        paper_sc: Some((57.0, 53.0, 4.0)),
    });

    rows.push(Table4Row {
        name: "BulkWrite 40-Word",
        cc: cc(
            Arc::new(|ctx, s| {
                let vals = vec![2.5f64; 20];
                cx::bulk_put(ctx, s.remote[0], &vals);
            }),
            1.0,
        ),
        sc: Some(scm(
            Arc::new(|ctx, s| {
                let vals = vec![2.5f64; 20];
                sc::bulk_write(ctx, s.remote_sc[0], &vals);
            }),
            1.0,
        )),
        paper_cc: (154.0, 70.0, 21.0, 63.0),
        paper_sc: Some((74.0, 70.0, 4.0)),
    });

    rows.push(Table4Row {
        name: "BulkRead 40-Word",
        cc: cc(
            Arc::new(|ctx, s| {
                cx::bulk_get(ctx, s.remote[0], 20);
            }),
            1.0,
        ),
        sc: Some(scm(
            Arc::new(|ctx, s| {
                sc::bulk_read(ctx, s.remote_sc[0], 20);
            }),
            1.0,
        )),
        paper_cc: (177.0, 70.0, 21.0, 86.0),
        paper_sc: Some((75.0, 70.0, 5.0)),
    });

    rows.push(Table4Row {
        name: "Prefetch 20-Word",
        cc: cc(
            Arc::new(|ctx, s| {
                cx::prefetch(ctx, &s.remote);
            }),
            20.0,
        ),
        sc: Some(scm(
            Arc::new(|ctx, s| {
                let handles: Vec<_> = s.remote_sc.iter().map(|&gp| sc::get(ctx, gp)).collect();
                sc::sync(ctx);
                for h in &handles {
                    h.value();
                }
            }),
            20.0,
        )),
        paper_cc: (35.4, 5.3, 21.0, 9.1),
        paper_sc: Some((12.1, 6.2, 5.9)),
    });

    rows
}

/// Optimistic Active Messages comparison (extension; §7 related work):
/// null-RMI totals for threaded dispatch vs optimistic dispatch of a
/// non-blocking and a possibly-blocking method. Returns (label, µs) rows.
pub fn measure_oam(iters: usize) -> Vec<(&'static str, f64)> {
    fn measure(iters: usize, register_blocks: bool, mode: CallMode) -> f64 {
        let result = Arc::new(Mutex::new(0.0f64));
        let r2 = Arc::clone(&result);
        let stop = Arc::new(AtomicBool::new(false));
        Sim::new(2).run(move |ctx| {
            cx::init(&ctx, CcxxConfig::tham());
            cx::register_method_full(
                &ctx,
                cx::DEFAULT_PROGRAM,
                "victim",
                register_blocks,
                |_ctx, _| cx::RmiRet::null(),
            );
            cx::barrier(&ctx);
            if ctx.node() == 0 {
                for _ in 0..4 {
                    cx::rmi(&ctx, 1, "victim", &[], None, mode);
                }
                let t0 = ctx.now();
                for _ in 0..iters {
                    cx::rmi(&ctx, 1, "victim", &[], None, mode);
                }
                *r2.lock() = to_us(ctx.now() - t0) / iters as f64;
                stop.store(true, Ordering::Release);
                cx::rmi(&ctx, 1, cx::M_NULL, &[], None, CallMode::Simple);
            } else {
                let s = Arc::clone(&stop);
                cx::spin_until(&ctx, move || s.load(Ordering::Acquire));
            }
            cx::finalize(&ctx);
        });
        let v = *result.lock();
        v
    }
    vec![
        (
            "threaded (always spawns)",
            measure(iters, true, CallMode::Threaded),
        ),
        (
            "optimistic, non-blocking method (runs on the stack)",
            measure(iters, false, CallMode::Optimistic),
        ),
        (
            "optimistic, blocking method (aborts to a thread)",
            measure(iters, true, CallMode::Optimistic),
        ),
    ]
}

/// The IBM MPL reference: a null round trip over the MPL cost profile
/// (Table 4's caption: 88 µs under AIX 3.2.5).
pub fn measure_mpl_rtt() -> f64 {
    const H_ECHO: am::HandlerId = 200;
    const H_DONE: am::HandlerId = 201;
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = Arc::clone(&out);
    Sim::new(2).run(move |ctx| {
        am::init(&ctx, am::NetProfile::ibm_mpl());
        am::register_barrier_handlers(&ctx);
        if ctx.node() == 0 {
            let cell = am::ReplyCell::new();
            let c2 = Arc::clone(&cell);
            am::register(&ctx, H_DONE, move |_ctx, m| c2.complete(m.args));
            am::barrier(&ctx);
            let t0 = ctx.now();
            am::endpoint(&ctx).to(1).handler(H_ECHO).send();
            let c3 = Arc::clone(&cell);
            am::wait_until(&ctx, move || c3.is_done());
            *o2.lock() = to_us(ctx.now() - t0);
            am::barrier(&ctx);
        } else {
            let served = Arc::new(AtomicBool::new(false));
            let s2 = Arc::clone(&served);
            am::register(&ctx, H_ECHO, move |ctx, m| {
                am::endpoint(ctx)
                    .to(m.src)
                    .handler(H_DONE)
                    .args(m.args)
                    .send();
                s2.store(true, Ordering::Release);
            });
            am::barrier(&ctx);
            let s3 = Arc::clone(&served);
            am::wait_until(&ctx, move || s3.load(Ordering::Acquire));
            am::barrier(&ctx);
        }
    });
    let v = *out.lock();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline calibration test: every Table 4 Total within 15% of the
    /// paper (counts are checked loosely — the paper's per-op attribution
    /// conventions are not fully recoverable from the scanned table).
    #[test]
    fn table4_totals_match_paper_within_15_percent() {
        let rows = run_table4(40);
        for r in &rows {
            let rel = (r.cc.total_us - r.paper_cc.0).abs() / r.paper_cc.0;
            assert!(
                rel < 0.15,
                "{}: cc++ total {:.1} vs paper {:.1} ({:.0}% off)",
                r.name,
                r.cc.total_us,
                r.paper_cc.0,
                rel * 100.0
            );
            if let (Some(sc), Some(p)) = (&r.sc, &r.paper_sc) {
                let rel = (sc.total_us - p.0).abs() / p.0;
                assert!(
                    rel < 0.15,
                    "{}: split-c total {:.1} vs paper {:.1}",
                    r.name,
                    sc.total_us,
                    p.0
                );
            }
        }
    }

    #[test]
    fn table4_runtime_columns_track_paper() {
        let rows = run_table4(40);
        for r in &rows {
            let diff = (r.cc.runtime_us - r.paper_cc.3).abs();
            assert!(
                diff < r.paper_cc.3 * 0.35 + 2.0,
                "{}: cc++ runtime {:.1} vs paper {:.1}",
                r.name,
                r.cc.runtime_us,
                r.paper_cc.3
            );
        }
    }

    #[test]
    fn simple_rmi_is_12us_over_raw_am_and_beats_mpl() {
        // "the round-trip time of a 0-Word Simple is only 12 µs slower than
        // the base round-trip time of the AM layer, and 21 µs faster than
        // IBM MPL".
        let rows = run_table4(40);
        let simple = rows.iter().find(|r| r.name == "0-Word Simple").unwrap();
        let raw_am = 55.0;
        let over = simple.cc.total_us - raw_am;
        assert!((5.0..20.0).contains(&over), "overhead over AM = {over:.1}");
        let mpl = measure_mpl_rtt();
        assert!((mpl - 88.0).abs() < 1.0, "MPL rtt = {mpl:.1}");
        assert!(simple.cc.total_us < mpl);
    }

    #[test]
    fn threaded_rmi_creates_one_thread_per_call() {
        let rows = run_table4(20);
        let threaded = rows.iter().find(|r| r.name == "0-Word Threaded").unwrap();
        assert!(
            (threaded.cc.creates - 1.0).abs() < 0.2,
            "creates/iter = {:.2}",
            threaded.cc.creates
        );
        let simple = rows.iter().find(|r| r.name == "0-Word Simple").unwrap();
        assert_eq!(simple.cc.creates, 0.0);
        assert_eq!(simple.cc.yields, 0.0);
    }

    #[test]
    fn prefetch_beats_blocking_reads_but_trails_splitc() {
        let rows = run_table4(20);
        let pf = rows.iter().find(|r| r.name == "Prefetch 20-Word").unwrap();
        let gp = rows.iter().find(|r| r.name == "GP 2-Word R/W").unwrap();
        // Latency hiding works...
        assert!(pf.cc.total_us < gp.cc.total_us * 0.6);
        // ...but "the overhead of thread management reduces the
        // effectiveness of latency hiding substantially" vs Split-C.
        let sc_pf = pf.sc.as_ref().unwrap();
        assert!(pf.cc.total_us > 2.0 * sc_pf.total_us);
    }
}

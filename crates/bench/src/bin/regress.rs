//! Perf-regression gate over the observability suite.
//!
//! Runs the paper-scale application suite (`--quick` for the CI smoke
//! scale) with the metrics registry on, plus a dedicated null-RMI
//! round-trip measurement, writes the full report — latency histograms,
//! virtual-time breakdowns, and wall-clock — to
//! `results/BENCH_observability.json`, and diffs it against the committed
//! baseline in `crates/bench/testdata/` with per-metric tolerances
//! (see [`mpmd_bench::regress`]). Exits nonzero when any metric moved
//! beyond its tolerance, or `2` when the baseline is missing or carries an
//! incomparable `schema_version`.
//!
//! With `--fastpath` it instead gates the short-message fast path on wall
//! clock: a null-RMI throughput microbenchmark (best of three reps) plus the
//! quick Figure 5 suite, written to `results/BENCH_fastpath.json` and
//! compared against the committed copy of that same file. It fails (exit 1)
//! when short-message throughput drops more than 10% below the baseline, or
//! when the virtual round-trip latency — which is deterministic — changes at
//! all.
//!
//! With `--local` it gates the wall-clock [`LocalFabric`] hot path: null-RMI
//! round trips on real OS threads (best of three reps), written to
//! `results/BENCH_local.json` and compared against the committed copy. It
//! fails (exit 1) when throughput drops more than 50%, or when a latency
//! percentile climbs more than one log2 histogram bucket (the histogram is
//! power-of-two bucketed, so "one bucket" is the finest detectable change)
//! above the baseline.
//!
//! Usage: `cargo run --release --bin regress -- [--quick] [-j N]
//! [--fastpath] [--local] [--update-baseline] [--json <path>]`

use mpmd_bench::experiments::{run_fig5, run_profile_suite, Cell, Scale};
use mpmd_bench::fmt::{
    bucket_object, reject_unknown_args, render_table, take_json_flag, take_switch, write_json,
    SCHEMA_VERSION,
};
use mpmd_bench::regress::compare;
use mpmd_bench::runner::take_jobs_flag;
use mpmd_ccxx::{self as cx, CallMode, CcxxConfig};
use mpmd_fabric::{Fabric, LocalFabric};
use mpmd_sim::{to_us, CostModel, Histogram, Sim};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str =
    "regress [--quick] [-j N] [--fastpath] [--local] [--update-baseline] [--json <path>]";

/// Null-RMI iterations per rep of the fast-path throughput microbenchmark.
const FASTPATH_ITERS: usize = 2_000;
/// Wall-clock reps; the best (fastest) rep is the gated number, which damps
/// scheduler noise on loaded CI machines.
const FASTPATH_REPS: usize = 3;
/// Allowed relative drop in short-message throughput before the gate fails.
const FASTPATH_TOLERANCE: f64 = 0.10;

/// Null-RMI iterations per rep of the `--local` wall-clock gate.
const LOCAL_ITERS: usize = 2_000;
/// Wall-clock reps of the `--local` gate; each percentile gates on its best
/// (lowest) rep, which damps scheduler noise the same way `--fastpath`'s
/// best-of-three throughput number does.
const LOCAL_REPS: usize = 3;
/// Allowed relative drop in `--local` null-RMI throughput. Much wider than
/// the fastpath tolerance because the wall-clock backend measures the host
/// directly, and a virtualized CI host drifts up to ~2x between quiet and
/// busy windows; 50% still fails the pre-overhaul data path (which measured
/// ~0.35x of the baseline back to back), and the sharp edge of this gate is
/// the latency-bucket check, which only a real latency-class change trips.
const LOCAL_TOLERANCE: f64 = 0.50;

/// Round-trip latency distribution of null (0-word) Simple RMIs, straight
/// from the registry's `ccxx.rmi_rtt_ns` histogram.
fn null_rmi(iters: usize) -> Histogram {
    let report = Sim::new(2).metrics(true).run(move |ctx| {
        cx::init(&ctx, CcxxConfig::tham());
        cx::barrier(&ctx);
        if ctx.node() == 0 {
            for _ in 0..iters {
                cx::rmi(&ctx, 1, cx::M_NULL, &[], None, CallMode::Simple);
            }
        }
        cx::finalize(&ctx);
    });
    report
        .metrics
        .expect("metrics were enabled")
        .hist("ccxx.rmi_rtt_ns")
        .expect("null RMIs record ccxx.rmi_rtt_ns")
}

/// One experiment cell as a report entry: virtual-time breakdown, raw
/// counters, and the run's global latency/occupancy histograms.
fn cell_value(c: &Cell) -> serde_json::Value {
    let m = c
        .breakdown
        .metrics
        .as_ref()
        .expect("profile suite runs with metrics on");
    let g = m.global();
    let comps = c.breakdown.components();
    let mut v = serde_json::Map::new();
    v.insert("elapsed_ns".into(), c.breakdown.elapsed.to_value());
    v.insert(
        "components_ns".into(),
        bucket_object(|bk| comps[bk.index()].to_value()),
    );
    v.insert("counts".into(), c.breakdown.counts.to_value());
    v.insert("units".into(), c.units.to_value());
    let mut counters = serde_json::Map::new();
    for (name, val) in &g.counters {
        counters.insert(name.to_string(), val.to_value());
    }
    v.insert("counters".into(), serde_json::Value::Object(counters));
    let mut hists = serde_json::Map::new();
    for (name, h) in &g.hists {
        hists.insert(name.to_string(), h.to_value());
    }
    v.insert("hists".into(), serde_json::Value::Object(hists));
    serde_json::Value::Object(v)
}

fn build_report(
    scale: Scale,
    iters: usize,
    rmi: &Histogram,
    rmi_wall: f64,
    cells: &[Cell],
    suite_wall: f64,
    total_wall: f64,
) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    m.insert("table".into(), "regress".to_value());
    m.insert("schema_version".into(), SCHEMA_VERSION.to_value());
    m.insert(
        "scale".into(),
        if scale == Scale::Quick {
            "quick"
        } else {
            "paper"
        }
        .to_value(),
    );
    m.insert("wall_clock_secs".into(), total_wall.to_value());
    let mut rm = serde_json::Map::new();
    rm.insert("iters".into(), (iters as u64).to_value());
    rm.insert("wall_secs".into(), rmi_wall.to_value());
    rm.insert("rtt_ns".into(), rmi.to_value());
    m.insert("null_rmi".into(), serde_json::Value::Object(rm));
    m.insert("suite_wall_secs".into(), suite_wall.to_value());
    let mut exps = serde_json::Map::new();
    for c in cells {
        exps.insert(format!("{} {}", c.lang.label(), c.label), cell_value(c));
    }
    m.insert("experiments".into(), serde_json::Value::Object(exps));
    serde_json::Value::Object(m)
}

fn baseline_path(scale: Scale) -> PathBuf {
    let tag = if scale == Scale::Quick {
        "quick"
    } else {
        "paper"
    };
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("testdata/regress_baseline_{tag}.json"))
}

fn print_summary(iters: usize, rmi: &Histogram, cells: &[Cell]) {
    println!(
        "null RMI round trip over {iters} iters (µs): p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
        to_us(rmi.p50()),
        to_us(rmi.p90()),
        to_us(rmi.p99()),
        to_us(rmi.max),
    );
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let g = c.breakdown.metrics.as_ref().unwrap().global();
            vec![
                format!("{} {}", c.lang.label(), c.label),
                format!("{:.2}", to_us(c.breakdown.elapsed) / 1_000.0),
                c.breakdown.counts.msgs_sent.to_string(),
                g.hists.len().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["run", "elapsed ms", "msgs", "hists"], &rows)
    );
}

/// Wall-clock gate over the zero-allocation short-message path.
///
/// The committed `results/BENCH_fastpath.json` doubles as the baseline: the
/// new report always overwrites it (so a green run refreshes the numbers a
/// human sees), and the gate compares against the copy that was on disk when
/// the run started.
fn run_fastpath(jobs: usize, update: bool, json_out: Option<PathBuf>) {
    eprintln!("regress: measuring the short-message fast path...");
    let mut best_wall = f64::INFINITY;
    let mut rtt = None;
    for _ in 0..FASTPATH_REPS {
        let t = Instant::now();
        let h = null_rmi(FASTPATH_ITERS);
        best_wall = best_wall.min(t.elapsed().as_secs_f64());
        rtt = Some(h);
    }
    let rtt = rtt.expect("at least one rep ran");
    let per_sec = FASTPATH_ITERS as f64 / best_wall;
    let t = Instant::now();
    let cells = run_fig5(Scale::Quick, &[0.1, 0.4, 0.7, 1.0], jobs);
    let fig5_wall = t.elapsed().as_secs_f64();
    let fig5_virtual: u64 = cells
        .iter()
        .map(|(_, _, sc, cc)| sc.breakdown.elapsed + cc.breakdown.elapsed)
        .sum();

    let mut m = serde_json::Map::new();
    m.insert("table".into(), "fastpath".to_value());
    m.insert("schema_version".into(), SCHEMA_VERSION.to_value());
    let mut rm = serde_json::Map::new();
    rm.insert("iters".into(), (FASTPATH_ITERS as u64).to_value());
    rm.insert("reps".into(), (FASTPATH_REPS as u64).to_value());
    rm.insert("best_wall_secs".into(), best_wall.to_value());
    rm.insert("rmi_per_sec".into(), per_sec.to_value());
    rm.insert("rtt_p50_ns".into(), rtt.p50().to_value());
    rm.insert("rtt_p99_ns".into(), rtt.p99().to_value());
    m.insert("null_rmi".into(), serde_json::Value::Object(rm));
    let mut fm = serde_json::Map::new();
    fm.insert("pairs".into(), (cells.len() as u64).to_value());
    fm.insert("virtual_elapsed_ns".into(), fig5_virtual.to_value());
    fm.insert("wall_secs".into(), fig5_wall.to_value());
    m.insert("fig5_quick".into(), serde_json::Value::Object(fm));
    let report = serde_json::Value::Object(m);

    println!(
        "fast path: {per_sec:.0} null RMIs/s wall (best of {FASTPATH_REPS}, \
         p50 {:.1} µs virtual), fig5 quick suite {fig5_wall:.2}s wall",
        to_us(rtt.p50()),
    );

    let out = json_out.unwrap_or_else(|| PathBuf::from("results/BENCH_fastpath.json"));
    let prev: Option<serde_json::Value> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok());
    write_json(&out, &report);
    if update {
        eprintln!("fastpath baseline updated: {}", out.display());
        return;
    }
    let Some(base) = prev else {
        eprintln!(
            "error: no committed fastpath baseline at {}; rerun with --update-baseline",
            out.display()
        );
        std::process::exit(2);
    };
    let mut failed = false;
    let base_per_sec = base["null_rmi"]["rmi_per_sec"].as_f64().unwrap_or(0.0);
    if per_sec < base_per_sec * (1.0 - FASTPATH_TOLERANCE) {
        eprintln!(
            "regression: null-RMI throughput {per_sec:.0}/s is more than \
             {:.0}% below the baseline {base_per_sec:.0}/s",
            FASTPATH_TOLERANCE * 100.0
        );
        failed = true;
    }
    if let Some(base_p50) = base["null_rmi"]["rtt_p50_ns"].as_u64() {
        if base_p50 != rtt.p50() {
            eprintln!(
                "regression: virtual null-RMI p50 RTT changed from {base_p50} ns \
                 to {} ns (virtual time is deterministic; an intentional cost-model \
                 change needs --update-baseline)",
                rtt.p50()
            );
            failed = true;
        }
    }
    if let Some(base_fig5) = base["fig5_quick"]["wall_secs"].as_f64() {
        let ratio = fig5_wall / base_fig5;
        eprintln!("fig5 quick wall vs baseline: {ratio:.2}x (informational)");
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "fastpath: throughput within {:.0}% of the baseline in {}",
        FASTPATH_TOLERANCE * 100.0,
        out.display()
    );
}

/// Wall-clock gate over the [`LocalFabric`] hot path (lock-free rings,
/// adaptive wait, wall-clock coalescing daemon).
///
/// Like `--fastpath`, the committed `results/BENCH_local.json` doubles as
/// the baseline: the new report overwrites it and the gate compares against
/// the copy that was on disk when the run started. Latencies come from the
/// registry's log2-bucketed `ccxx.rmi_rtt_ns` histogram, so percentiles are
/// bucket upper edges (`2^k - 1` ns); the gate allows exactly one bucket of
/// upward drift (`new <= 2*old + 1`) — the finest regression the histogram
/// can resolve — and any more is a real latency-class change, not noise.
fn run_local(update: bool, json_out: Option<PathBuf>) {
    eprintln!("regress: measuring the LocalFabric wall-clock hot path...");
    let mut best_wall = f64::INFINITY;
    let mut p50 = u64::MAX;
    let mut p99 = u64::MAX;
    for _ in 0..LOCAL_REPS {
        let t = Instant::now();
        let h = LocalFabric::run(2, move |ctx| {
            cx::init(&ctx, CcxxConfig::tham());
            cx::barrier(&ctx);
            if ctx.node() == 0 {
                for _ in 0..LOCAL_ITERS {
                    cx::rmi(&ctx, 1, cx::M_NULL, &[], None, CallMode::Simple);
                }
            }
            cx::finalize(&ctx);
        })
        .metrics
        .expect("LocalFabric runs with metrics on")
        .hist("ccxx.rmi_rtt_ns")
        .expect("null RMIs record ccxx.rmi_rtt_ns");
        best_wall = best_wall.min(t.elapsed().as_secs_f64());
        assert_eq!(h.count, LOCAL_ITERS as u64, "lost null-RMI round trips");
        p50 = p50.min(h.p50());
        p99 = p99.min(h.p99());
    }
    let per_sec = LOCAL_ITERS as f64 / best_wall;

    let mut m = serde_json::Map::new();
    m.insert("table".into(), "local_gate".to_value());
    m.insert("schema_version".into(), SCHEMA_VERSION.to_value());
    let mut rm = serde_json::Map::new();
    rm.insert("iters".into(), (LOCAL_ITERS as u64).to_value());
    rm.insert("reps".into(), (LOCAL_REPS as u64).to_value());
    rm.insert("best_wall_secs".into(), best_wall.to_value());
    rm.insert("rmi_per_sec".into(), per_sec.to_value());
    rm.insert("rtt_p50_ns".into(), p50.to_value());
    rm.insert("rtt_p99_ns".into(), p99.to_value());
    m.insert("null_rmi".into(), serde_json::Value::Object(rm));
    let report = serde_json::Value::Object(m);

    println!(
        "local: {per_sec:.0} null RMIs/s wall (best of {LOCAL_REPS}), \
         measured RTT p50 {:.1} µs / p99 {:.1} µs",
        to_us(p50),
        to_us(p99),
    );

    let out = json_out.unwrap_or_else(|| PathBuf::from("results/BENCH_local.json"));
    let prev: Option<serde_json::Value> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok());
    write_json(&out, &report);
    if update {
        eprintln!("local baseline updated: {}", out.display());
        return;
    }
    let Some(base) = prev else {
        eprintln!(
            "error: no committed local baseline at {}; rerun with --update-baseline",
            out.display()
        );
        std::process::exit(2);
    };
    let mut failed = false;
    let base_per_sec = base["null_rmi"]["rmi_per_sec"].as_f64().unwrap_or(0.0);
    if per_sec < base_per_sec * (1.0 - LOCAL_TOLERANCE) {
        eprintln!(
            "regression: wall-clock null-RMI throughput {per_sec:.0}/s is more \
             than {:.0}% below the baseline {base_per_sec:.0}/s",
            LOCAL_TOLERANCE * 100.0
        );
        failed = true;
    }
    for (name, measured) in [("p50", p50), ("p99", p99)] {
        let key = format!("rtt_{name}_ns");
        let Some(base_ns) = base["null_rmi"][key.as_str()].as_u64() else {
            continue;
        };
        if measured > base_ns.saturating_mul(2) + 1 {
            eprintln!(
                "regression: wall-clock null-RMI {name} RTT {measured} ns is more \
                 than one histogram bucket above the baseline {base_ns} ns"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "local: throughput within {:.0}% and latency within one bucket of the \
         baseline in {}",
        LOCAL_TOLERANCE * 100.0,
        out.display()
    );
}

fn main() {
    let (rest, json_out) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    let (rest, scale) = Scale::take(rest);
    let (rest, update) = take_switch(rest, "--update-baseline");
    let (rest, fastpath) = take_switch(rest, "--fastpath");
    let (rest, local) = take_switch(rest, "--local");
    reject_unknown_args(&rest, USAGE);
    let update = update || std::env::var_os("UPDATE_GOLDEN").is_some();
    if fastpath {
        run_fastpath(jobs, update, json_out);
        return;
    }
    if local {
        run_local(update, json_out);
        return;
    }

    eprintln!("regress: measuring the {scale:?}-scale observability suite...");
    let wall_all = Instant::now();
    let iters = if scale == Scale::Quick { 200 } else { 1_000 };
    let t = Instant::now();
    let rmi = null_rmi(iters);
    let rmi_wall = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let cells = run_profile_suite(scale, CostModel::default().with_metrics(), jobs);
    let suite_wall = t.elapsed().as_secs_f64();
    let report = build_report(
        scale,
        iters,
        &rmi,
        rmi_wall,
        &cells,
        suite_wall,
        wall_all.elapsed().as_secs_f64(),
    );
    print_summary(iters, &rmi, &cells);

    let out = json_out.unwrap_or_else(|| PathBuf::from("results/BENCH_observability.json"));
    write_json(&out, &report);

    let baseline = baseline_path(scale);
    if update {
        write_json(&baseline, &report);
        eprintln!("baseline updated: {}", baseline.display());
        return;
    }
    let text = match std::fs::read_to_string(&baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: no committed baseline at {} ({e}); run with --update-baseline to create it",
                baseline.display()
            );
            std::process::exit(2);
        }
    };
    let base: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: unreadable baseline {}: {e:?}", baseline.display());
        std::process::exit(2);
    });
    match compare(&report, &base) {
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        Ok(regs) if !regs.is_empty() => {
            eprintln!("regressions against {}:", baseline.display());
            for r in &regs {
                eprintln!("  {}", r.describe());
            }
            eprintln!("{} metric(s) out of tolerance", regs.len());
            std::process::exit(1);
        }
        Ok(_) => {
            println!(
                "regress: all gated metrics within tolerance of {}",
                baseline.display()
            );
        }
    }
}

//! Regenerate Table 1 (source-code size comparison), in the only way that
//! makes sense for a reproduction: the paper compares the Nexus-based CC++
//! runtime stack against the lean ThAM-based one; we print the paper's
//! numbers and the analogous line counts of this repository's crates, with
//! the same grouping (messaging substrate vs runtime vs support library).
//!
//! Usage: `cargo run -p mpmd-bench --bin table1 [--json <path>]`

use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json};
use std::path::{Path, PathBuf};

const USAGE: &str = "table1 [--json <path>]";

fn count_rust_lines(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            total += count_rust_lines(&p);
        } else if p.extension().is_some_and(|x| x == "rs") {
            if let Ok(s) = std::fs::read_to_string(&p) {
                total += s.lines().count();
            }
        }
    }
    total
}

fn workspace_root() -> PathBuf {
    // bench crate lives at <root>/crates/bench
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    reject_unknown_args(&rest, USAGE);
    println!("Table 1 — source code size, old (Nexus) vs new (ThAM) CC++ runtime");
    println!();
    println!("Paper (C++/headers lines):");
    let paper = vec![
        vec!["Nexus v3.0".into(), "39226".into(), "6552".into()],
        vec![
            "CC++ runtime (w/Nexus)".into(),
            "1936".into(),
            "1366".into(),
        ],
        vec!["ThAM".into(), "1155".into(), "726".into()],
        vec!["CC++ runtime (w/ThAM)".into(), "2682".into(), "1346".into()],
    ];
    println!(
        "{}",
        render_table(&["component", ".C lines", ".H lines"], &paper)
    );

    let root = workspace_root();
    println!("This reproduction (Rust lines per crate, same grouping):");
    let groups: &[(&str, &str)] = &[
        (
            "simulated multicomputer (stands in for the SP)",
            "crates/sim",
        ),
        ("threads package", "crates/threads"),
        ("Active Messages layer", "crates/am"),
        ("Split-C runtime", "crates/splitc"),
        ("CC++ runtime (ThAM role)", "crates/ccxx"),
        ("Nexus baseline profile", "crates/nexus"),
        ("applications", "crates/apps"),
        ("experiment harness", "crates/bench"),
    ];
    let mut rows = Vec::new();
    let mut total = 0;
    for (name, rel) in groups {
        let n = count_rust_lines(&root.join(rel));
        total += n;
        rows.push(vec![name.to_string(), n.to_string()]);
    }
    rows.push(vec!["total".to_string(), total.to_string()]);
    println!("{}", render_table(&["component", ".rs lines"], &rows));

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "table1".to_value());
        let mut repro = serde_json::Map::new();
        for (name, rel) in groups {
            repro.insert(
                name.to_string(),
                count_rust_lines(&root.join(rel)).to_value(),
            );
        }
        repro.insert("total".to_string(), total.to_value());
        m.insert(
            "repro_rust_lines".to_string(),
            serde_json::Value::Object(repro),
        );
        write_json(path, &serde_json::Value::Object(m));
    }
    println!(
        "The paper's point stands in the reproduction: the lean runtime\n\
         (ccxx, {} lines) is an order of magnitude smaller than a portable\n\
         multi-protocol runtime like Nexus (39k+ lines) while outperforming it.",
        count_rust_lines(&root.join("crates/ccxx"))
    );
}

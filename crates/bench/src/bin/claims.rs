//! Check the quantitative claims of the paper's §6 Discussion against the
//! reproduction:
//!
//! * thread synchronization is 14-32% of the CC++/Split-C gap;
//! * ~95% of lock acquisitions are contention-less;
//! * 75-85% of thread-management cost is context switches;
//! * thread management is 10-15% of CC++ application cost;
//! * the method-name translation overhead is negligible (stub caching).
//!
//! Usage: `cargo run --release -p mpmd-bench --bin claims [--quick]`

use mpmd_apps::em3d::Em3dVersion;
use mpmd_bench::experiments::{run_fig5, run_fig6_lu, Scale};
use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json};
use mpmd_sim::to_us;

const USAGE: &str = "claims [--quick] [--json <path>]";

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, scale) = Scale::take(rest);
    reject_unknown_args(&rest, USAGE);
    eprintln!("running discussion-claims analysis ({scale:?} scale)...");
    let jobs = mpmd_bench::runner::default_jobs();
    let cells = run_fig5(scale, &[1.0], jobs);
    let (lu_sc, lu_cc) = run_fig6_lu(scale, jobs);

    let mut rows = Vec::new();
    let mut check = |name: &str, app: &str, got: f64, paper: &str| {
        rows.push(vec![
            name.to_string(),
            app.to_string(),
            format!("{got:.1}%"),
            paper.to_string(),
        ]);
    };

    for (v, _f, sc, cc) in &cells {
        let gap = cc.breakdown.elapsed.saturating_sub(sc.breakdown.elapsed) as f64;
        if gap <= 0.0 {
            continue;
        }
        let sync_share = cc.breakdown.thread_sync as f64 / gap * 100.0;
        let paper = match v {
            Em3dVersion::Ghost => "19% (em3d-ghost)",
            _ => "14-32%",
        };
        check("sync share of gap", v.label(), sync_share, paper);

        let mgmt_share = cc.breakdown.thread_mgmt as f64 / cc.breakdown.busy_total() as f64 * 100.0;
        check(
            "thread mgmt share of cc++ cost",
            v.label(),
            mgmt_share,
            "10-15%",
        );

        let c = &cc.breakdown.counts;
        let switch_cost = c.context_switches as f64 * 6.0;
        let create_cost = c.thread_creates as f64 * 5.0;
        let switch_share = switch_cost / (switch_cost + create_cost).max(1.0) * 100.0;
        check(
            "context-switch share of thread mgmt",
            v.label(),
            switch_share,
            "75-85%",
        );

        let contention_less =
            (1.0 - c.lock_contended as f64 / c.lock_acquisitions.max(1) as f64) * 100.0;
        check(
            "contention-less lock acquisitions",
            v.label(),
            contention_less,
            "~95%",
        );
    }

    {
        let gap = lu_cc
            .breakdown
            .elapsed
            .saturating_sub(lu_sc.breakdown.elapsed) as f64;
        let sync_share = lu_cc.breakdown.thread_sync as f64 / gap.max(1.0) * 100.0;
        check("sync share of gap", "cc-lu", sync_share, "32%");
        // "about 20% of the gap" from extra data copying: approximate the
        // copy cost as the runtime-component difference.
        let copy_share = (lu_cc
            .breakdown
            .runtime
            .saturating_sub(lu_sc.breakdown.runtime)) as f64
            / gap.max(1.0)
            * 100.0;
        check("extra copying share of gap", "cc-lu", copy_share, "~20%");
        let net_ratio = lu_cc.breakdown.net as f64 / lu_sc.breakdown.net.max(1) as f64;
        rows.push(vec![
            "cc-lu net vs sc-lu net".into(),
            "cc-lu".into(),
            format!("{net_ratio:.1}x"),
            "~2x".into(),
        ]);
    }

    // Stub caching makes name translation negligible: 3 µs of a ~92 µs GP
    // access.
    rows.push(vec![
        "method lookup cost (stub caching)".into(),
        "all".into(),
        format!(
            "{:.1} µs",
            to_us(mpmd_ccxx::CcxxCosts::default().stub_lookup)
        ),
        "~3 µs".into(),
    ]);

    println!("Discussion claims — reproduction vs paper");
    println!(
        "{}",
        render_table(&["claim", "application", "measured", "paper"], &rows)
    );

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "claims".to_value());
        m.insert(
            "claims".to_string(),
            serde_json::Value::Array(
                rows.iter()
                    .map(|r| {
                        let mut c = serde_json::Map::new();
                        c.insert("claim".to_string(), r[0].to_value());
                        c.insert("application".to_string(), r[1].to_value());
                        c.insert("measured".to_string(), r[2].to_value());
                        c.insert("paper".to_string(), r[3].to_value());
                        serde_json::Value::Object(c)
                    })
                    .collect(),
            ),
        );
        write_json(path, &serde_json::Value::Object(m));
    }
}

//! Regenerate Figure 6: Water (atomic/prefetch × 64/512 molecules) and
//! blocked LU (512×512, 16×16 blocks) breakdowns, normalized against
//! Split-C.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin fig6 [--quick] [-j N] [--json <path>]`

use mpmd_apps::water::WaterVersion;
use mpmd_bench::experiments::{
    bar_pair, breakdown_row, run_fig6_lu, run_fig6_water, Scale, BREAKDOWN_HEADERS,
};
use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json, JsonReport};
use mpmd_bench::runner::take_jobs_flag;

const USAGE: &str = "fig6 [--quick] [-j N] [--json <path>]";

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    let (rest, scale) = Scale::take(rest);
    reject_unknown_args(&rest, USAGE);
    eprintln!("running Figure 6 Water sweeps ({scale:?} scale)...");
    let sizes: &[usize] = if scale == Scale::Paper {
        &[64, 512]
    } else {
        &[16, 32]
    };
    let water = run_fig6_water(scale, sizes, jobs);
    eprintln!("running Figure 6 LU ({scale:?} scale)...");
    let (lu_sc, lu_cc) = run_fig6_lu(scale, jobs);

    let mut rows = Vec::new();
    for (v, n, sc, cc) in &water {
        let normal = mpmd_sim::to_secs(sc.breakdown.elapsed);
        rows.push(breakdown_row(
            &format!("split-c {} {n}", v.label()),
            sc,
            normal,
        ));
        rows.push(breakdown_row(
            &format!("cc++    {} {n}", v.label()),
            cc,
            normal,
        ));
    }
    {
        let normal = mpmd_sim::to_secs(lu_sc.breakdown.elapsed);
        rows.push(breakdown_row("split-c sc-lu", &lu_sc, normal));
        rows.push(breakdown_row("cc++    cc-lu", &lu_cc, normal));
    }
    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("figure".to_string(), "fig6".to_value());
        m.insert(
            "water".to_string(),
            serde_json::Value::Array(
                water
                    .iter()
                    .map(|(v, n, sc, cc)| {
                        let mut c = serde_json::Map::new();
                        c.insert("version".to_string(), v.label().to_value());
                        c.insert("molecules".to_string(), n.to_value());
                        c.insert("splitc".to_string(), sc.to_json());
                        c.insert("ccxx".to_string(), cc.to_json());
                        serde_json::Value::Object(c)
                    })
                    .collect(),
            ),
        );
        let mut lu = serde_json::Map::new();
        lu.insert("splitc".to_string(), lu_sc.to_json());
        lu.insert("ccxx".to_string(), lu_cc.to_json());
        m.insert("lu".to_string(), serde_json::Value::Object(lu));
        write_json(path, &serde_json::Value::Object(m));
    }

    println!("Figure 6 — Water and LU execution breakdown (normalized against Split-C)");
    println!("{}", render_table(&BREAKDOWN_HEADERS, &rows));
    println!("{}", mpmd_bench::fmt::bar_legend());
    for (v, n, sc, cc) in &water {
        println!("{}", bar_pair(&format!("{} {n}", v.label()), sc, cc, 30));
    }
    println!("{}", bar_pair("lu", &lu_sc, &lu_cc, 30));
    println!();

    println!("shapes (paper values in parentheses):");
    for (v, n, sc, cc) in &water {
        let ratio = cc.breakdown.elapsed as f64 / sc.breakdown.elapsed as f64;
        let paper = match (v, n) {
            (WaterVersion::Atomic, 64) => "2.6",
            (WaterVersion::Atomic, 512) => "5.6",
            (WaterVersion::Prefetch, 64) => "2.5",
            (WaterVersion::Prefetch, 512) => "3.5",
            _ => "-",
        };
        println!(
            "  cc++/split-c {} {n}: {ratio:.2}  (paper {paper})",
            v.label()
        );
    }
    let lu_ratio = lu_cc.breakdown.elapsed as f64 / lu_sc.breakdown.elapsed as f64;
    println!("  cc-lu/sc-lu: {lu_ratio:.2}  (paper 3.6)");

    // Prefetch improvement per language (paper: 60%/60% at 64; 22%/51% at
    // 512).
    for &n in sizes {
        let at = water
            .iter()
            .find(|(v, m, _, _)| *v == WaterVersion::Atomic && *m == n)
            .unwrap();
        let pf = water
            .iter()
            .find(|(v, m, _, _)| *v == WaterVersion::Prefetch && *m == n)
            .unwrap();
        let sc_imp = 1.0 - pf.2.breakdown.elapsed as f64 / at.2.breakdown.elapsed as f64;
        let cc_imp = 1.0 - pf.3.breakdown.elapsed as f64 / at.3.breakdown.elapsed as f64;
        println!(
            "  prefetch improvement at {n} molecules: split-c {:.0}%, cc++ {:.0}%",
            sc_imp * 100.0,
            cc_imp * 100.0
        );
    }
}

//! Real-hardware mode: the paper's microbenchmarks on the wall-clock
//! [`LocalFabric`] backend instead of the simulator.
//!
//! Runs three workloads on real OS threads over the sharded SPSC rings:
//!
//! * **null-RMI** — CC++ Simple round trips between two nodes; the
//!   `ccxx.rmi_rtt_ns` histogram holds *measured* nanoseconds.
//! * **barrier ring** — repeated AM barriers across four nodes, with the
//!   per-round wall latency recorded into `local.barrier_ns`.
//! * **EM3D ghost** — the Split-C ghost-exchange application; node 0's
//!   final field values are compared bit-for-bit against a simulator run
//!   of the same parameters (same code, different fabric).
//!
//! The binary asserts completion and nonzero wall-clock histograms (it is
//! the CI smoke for the backend) and prints measured-vs-simulated null-RMI
//! round trips. Usage: `local [--rmi-iters N] [--barriers N] [--json <path>]`

use mpmd_apps::em3d::{run_splitc_cost, run_splitc_on, Em3dParams, Em3dValues, Em3dVersion};
use mpmd_apps::AppRun;
use mpmd_bench::fmt::{reject_unknown_args, take_json_flag, write_json, SCHEMA_VERSION};
use mpmd_ccxx::{self as cx, CallMode, CcxxConfig};
use mpmd_fabric::{Fabric, LocalFabric};
use mpmd_sim::{to_us, CostModel, Histogram, Sim};
use parking_lot::Mutex;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "local [--rmi-iters N] [--barriers N] [--json <path>]";

/// Null-RMI round trips on `F`; returns the run's `ccxx.rmi_rtt_ns`
/// histogram — virtual nanoseconds under the simulator, measured wall
/// nanoseconds under [`LocalFabric`]. The body is shared verbatim between
/// the two backends; only the driver differs.
fn null_rmi_body<F: Fabric>(ctx: &F, iters: usize) {
    cx::init(ctx, CcxxConfig::tham());
    cx::barrier(ctx);
    if ctx.node() == 0 {
        for _ in 0..iters {
            cx::rmi(ctx, 1, cx::M_NULL, &[], None, CallMode::Simple);
        }
    }
    cx::finalize(ctx);
}

fn null_rmi_local(iters: usize) -> Histogram {
    let report = LocalFabric::run(2, move |ctx| null_rmi_body(&ctx, iters));
    report
        .metrics
        .expect("LocalFabric runs with metrics on")
        .hist("ccxx.rmi_rtt_ns")
        .expect("null RMIs record ccxx.rmi_rtt_ns")
}

fn null_rmi_sim(iters: usize) -> Histogram {
    let report = Sim::new(2)
        .metrics(true)
        .run(move |ctx| null_rmi_body(&ctx, iters));
    report
        .metrics
        .expect("metrics were enabled")
        .hist("ccxx.rmi_rtt_ns")
        .expect("null RMIs record ccxx.rmi_rtt_ns")
}

/// Barrier ring on four OS threads: per-round wall latency of the
/// centralized AM barrier, from node 0's clock.
fn barrier_ring(rounds: usize) -> Histogram {
    let report = LocalFabric::run(4, move |ctx| {
        mpmd_am::init(&ctx, mpmd_am::NetProfile::sp_am_splitc());
        mpmd_am::register_barrier_handlers(&ctx);
        mpmd_am::barrier(&ctx);
        for _ in 0..rounds {
            let t0 = ctx.metric_now();
            mpmd_am::barrier(&ctx);
            if ctx.node() == 0 {
                if let Some(t0) = t0 {
                    ctx.metric_observe_since("local.barrier_ns", t0);
                }
            }
        }
    });
    report
        .metrics
        .expect("LocalFabric runs with metrics on")
        .hist("local.barrier_ns")
        .expect("barrier rounds record local.barrier_ns")
}

/// EM3D ghost on the wall-clock backend; node 0's result plus wall time.
fn em3d_local(p: &Em3dParams) -> (AppRun<Em3dValues>, f64) {
    let slot: Arc<Mutex<Option<AppRun<Em3dValues>>>> = Arc::new(Mutex::new(None));
    let s2 = Arc::clone(&slot);
    let p = p.clone();
    let t = Instant::now();
    LocalFabric::run(p.procs, move |ctx| {
        if let Some(run) = run_splitc_on(&ctx, &p, Em3dVersion::Ghost, None) {
            *s2.lock() = Some(run);
        }
    });
    let wall = t.elapsed().as_secs_f64();
    let run = slot.lock().take().expect("node 0 produced the em3d result");
    (run, wall)
}

fn hist_value(h: &Histogram) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    m.insert("count".into(), h.count.to_value());
    m.insert("p50_ns".into(), h.p50().to_value());
    m.insert("p99_ns".into(), h.p99().to_value());
    m.insert("max_ns".into(), h.max.to_value());
    serde_json::Value::Object(m)
}

fn main() {
    let (rest, json_out) = take_json_flag(std::env::args().skip(1));
    let (rest, rmi_iters) = take_flag_count(rest, "--rmi-iters", 2_000);
    let (rest, barriers) = take_flag_count(rest, "--barriers", 500);
    reject_unknown_args(&rest, USAGE);

    eprintln!("local: null-RMI on {rmi_iters} wall-clock round trips...");
    let t = Instant::now();
    let rtt = null_rmi_local(rmi_iters);
    let rmi_wall = t.elapsed().as_secs_f64();
    assert_eq!(
        rtt.count, rmi_iters as u64,
        "lost null-RMI round trips on the wall-clock backend"
    );
    assert!(rtt.sum > 0, "wall-clock RTT histogram is empty");
    let sim_rtt = null_rmi_sim(rmi_iters.min(200));

    eprintln!("local: barrier ring, {barriers} rounds on 4 threads...");
    let bar = barrier_ring(barriers);
    assert_eq!(bar.count, barriers as u64, "lost barrier rounds");
    assert!(bar.sum > 0, "wall-clock barrier histogram is empty");

    eprintln!("local: em3d ghost on 4 threads vs the simulator...");
    let p = Em3dParams {
        graph_nodes: 160,
        degree: 5,
        procs: 4,
        steps: 2,
        remote_frac: 0.4,
        seed: 42,
    };
    let (local_run, em3d_wall) = em3d_local(&p);
    let sim_run = run_splitc_cost(&p, Em3dVersion::Ghost, CostModel::default());
    assert_eq!(
        local_run.output.e, sim_run.output.e,
        "em3d E field diverged between fabrics"
    );
    assert_eq!(
        local_run.output.h, sim_run.output.h,
        "em3d H field diverged between fabrics"
    );

    println!(
        "null RMI:  measured p50 {:.1} µs / p99 {:.1} µs wall  |  simulated p50 {:.1} µs virtual  ({:.0} RMIs/s)",
        to_us(rtt.p50()),
        to_us(rtt.p99()),
        to_us(sim_rtt.p50()),
        rmi_iters as f64 / rmi_wall,
    );
    println!(
        "barrier:   p50 {:.1} µs / p99 {:.1} µs wall over {barriers} rounds on 4 threads",
        to_us(bar.p50()),
        to_us(bar.p99()),
    );
    println!(
        "em3d ghost: {em3d_wall:.3}s wall on 4 threads, fields bit-identical to the simulator"
    );

    let mut m = serde_json::Map::new();
    m.insert("table".into(), "local".to_value());
    m.insert("schema_version".into(), SCHEMA_VERSION.to_value());
    let mut rm = serde_json::Map::new();
    rm.insert("iters".into(), (rmi_iters as u64).to_value());
    rm.insert("wall_secs".into(), rmi_wall.to_value());
    rm.insert("rtt_wall".into(), hist_value(&rtt));
    rm.insert("rtt_sim_p50_ns".into(), sim_rtt.p50().to_value());
    m.insert("null_rmi".into(), serde_json::Value::Object(rm));
    let mut bm = serde_json::Map::new();
    bm.insert("rounds".into(), (barriers as u64).to_value());
    bm.insert("latency_wall".into(), hist_value(&bar));
    m.insert("barrier_ring".into(), serde_json::Value::Object(bm));
    let mut em = serde_json::Map::new();
    em.insert("wall_secs".into(), em3d_wall.to_value());
    em.insert(
        "elapsed_wall_ns".into(),
        local_run.breakdown.elapsed.to_value(),
    );
    em.insert("matches_sim".into(), true.to_value());
    em.insert(
        "msgs_sent".into(),
        local_run.breakdown.counts.msgs_sent.to_value(),
    );
    m.insert("em3d_ghost".into(), serde_json::Value::Object(em));
    let report = serde_json::Value::Object(m);
    if let Some(path) = json_out {
        write_json(&path, &report);
    } else {
        write_json(&PathBuf::from("results/local.json"), &report);
    }
}

/// Parse `--name N` out of the argument list (defaulting when absent).
fn take_flag_count(args: Vec<String>, name: &str, default: usize) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    let mut val = default;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == name {
            let v = it
                .next()
                .unwrap_or_else(|| panic!("{name} needs a value ({USAGE})"));
            val = v
                .parse()
                .unwrap_or_else(|_| panic!("{name} needs an integer ({USAGE})"));
        } else {
            out.push(a);
        }
    }
    (out, val)
}

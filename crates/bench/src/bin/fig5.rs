//! Regenerate Figure 5: EM3D per-edge execution-time breakdowns for 10%,
//! 40%, 70% and 100% remote edges, three versions, both languages,
//! normalized against Split-C.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin fig5 [--quick] [-j N] [--json <path>]`

use mpmd_bench::experiments::{bar_pair, breakdown_row, run_fig5, Scale, BREAKDOWN_HEADERS};
use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json, JsonReport};
use mpmd_bench::runner::take_jobs_flag;

const USAGE: &str = "fig5 [--quick] [-j N] [--json <path>]";

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    let (rest, scale) = Scale::take(rest);
    reject_unknown_args(&rest, USAGE);
    eprintln!("running Figure 5 EM3D sweeps ({scale:?} scale)...");
    let fracs = [0.1, 0.4, 0.7, 1.0];
    let cells = run_fig5(scale, &fracs, jobs);

    let mut rows = Vec::new();
    for (v, f, sc, cc) in &cells {
        let normal = mpmd_sim::to_secs(sc.breakdown.elapsed);
        rows.push(breakdown_row(
            &format!("split-c {} {:.0}%", v.label(), f * 100.0),
            sc,
            normal,
        ));
        rows.push(breakdown_row(
            &format!("cc++    {} {:.0}%", v.label(), f * 100.0),
            cc,
            normal,
        ));
    }
    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("figure".to_string(), "fig5".to_value());
        m.insert(
            "cells".to_string(),
            serde_json::Value::Array(
                cells
                    .iter()
                    .map(|(v, f, sc, cc)| {
                        let mut c = serde_json::Map::new();
                        c.insert("version".to_string(), v.label().to_value());
                        c.insert("remote_frac".to_string(), f.to_value());
                        c.insert("splitc".to_string(), sc.to_json());
                        c.insert("ccxx".to_string(), cc.to_json());
                        serde_json::Value::Object(c)
                    })
                    .collect(),
            ),
        );
        write_json(path, &serde_json::Value::Object(m));
    }

    println!("Figure 5 — EM3D execution breakdown (normalized against Split-C)");
    println!("{}", render_table(&BREAKDOWN_HEADERS, &rows));
    println!("{}", mpmd_bench::fmt::bar_legend());
    for (v, f, sc, cc) in &cells {
        println!(
            "{}",
            bar_pair(&format!("{} {:.0}%", v.label(), f * 100.0), sc, cc, 30)
        );
    }
    println!();

    // The paper's headline shapes.
    let find = |v, f: f64| {
        cells
            .iter()
            .find(|(cv, cf, _, _)| *cv == v && (*cf - f).abs() < 1e-9)
            .unwrap()
    };
    use mpmd_apps::em3d::Em3dVersion::*;
    let (_, _, base_sc, base_cc) = find(Base, 1.0);
    let (_, _, ghost_sc, ghost_cc) = find(Ghost, 1.0);
    let (_, _, bulk_sc, bulk_cc) = find(Bulk, 1.0);
    let r = |a: &mpmd_bench::experiments::Cell, b: &mpmd_bench::experiments::Cell| {
        a.breakdown.elapsed as f64 / b.breakdown.elapsed as f64
    };
    println!("shapes at 100% remote edges (paper values in parentheses):");
    println!(
        "  cc++/split-c em3d-base : {:.2}  (~2.0)",
        r(base_cc, base_sc)
    );
    println!(
        "  cc++/split-c em3d-ghost: {:.2}  (~2.5)",
        r(ghost_cc, ghost_sc)
    );
    println!(
        "  cc++/split-c em3d-bulk : {:.2}  (~1.1)",
        r(bulk_cc, bulk_sc)
    );
    println!(
        "  ghost reduces base by    {:.0}% / {:.0}%  (87-89%)",
        (1.0 - 1.0 / r(base_sc, ghost_sc)) * 100.0,
        (1.0 - 1.0 / r(base_cc, ghost_cc)) * 100.0
    );
    println!(
        "  bulk reduces ghost by    {:.0}% / {:.0}%  (>95%)",
        (1.0 - 1.0 / r(ghost_sc, bulk_sc)) * 100.0,
        (1.0 - 1.0 / r(ghost_cc, bulk_cc)) * 100.0
    );
}

//! Message profiles: "the AM layer and the threads package have been
//! heavily instrumented to account for the number, types, and sizes of
//! message transfers as well as the number of threads, context switches,
//! and synchronization operations" — this binary prints that raw
//! instrumentation for each application and language, plus the per-run
//! src→dst traffic matrix recorded by the metrics registry.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin msgprofile [--quick]`

use mpmd_bench::experiments::{run_profile_suite, Cell, Scale};
use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json, JsonReport};
use mpmd_bench::runner::take_jobs_flag;
use mpmd_sim::{size_bucket_limit, CostModel};
use serde::Serialize;

const USAGE: &str = "msgprofile [--quick] [-j N] [--json <path>]";

/// The whole profile report: one run per suite cell, each carrying its
/// counters, size histogram, and metrics registry (latency histograms and
/// the keyed `net.msgs_to`/`net.bytes_to` traffic matrix).
struct MsgProfile {
    cells: Vec<Cell>,
}

impl JsonReport for MsgProfile {
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)> {
        vec![
            ("table", "msgprofile".to_value()),
            (
                "runs",
                serde_json::Value::Array(self.cells.iter().map(Cell::to_json).collect()),
            ),
        ]
    }
}

fn hist_cells(c: &Cell) -> Vec<String> {
    let s = &c.breakdown.counts;
    let mut out = vec![
        format!("{} {}", c.lang.label(), c.label),
        s.msgs_sent.to_string(),
        s.short_msgs.to_string(),
        s.bulk_msgs.to_string(),
        format!("{:.1}", s.bytes_sent as f64 / 1024.0),
        s.thread_creates.to_string(),
        s.context_switches.to_string(),
        s.sync_ops.to_string(),
    ];
    for i in 0..6 {
        out.push(s.msg_size_hist[i].to_string());
    }
    out
}

/// Print one run's src→dst traffic matrix from the registry's keyed
/// counters (messages, with KiB after the slash; `-` for silent links).
fn print_traffic(c: &Cell) {
    let Some(m) = &c.breakdown.metrics else {
        return;
    };
    let n = m.nodes.len();
    let headers: Vec<String> = std::iter::once("src\\dst".to_string())
        .chain((0..n).map(|d| d.to_string()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|src| {
            let keyed = &m.nodes[src].keyed;
            let mut row = vec![src.to_string()];
            for dst in 0..n {
                let get = |name: &str| {
                    keyed
                        .get(name)
                        .and_then(|t| t.get(&(dst as u64)))
                        .copied()
                        .unwrap_or(0)
                };
                let (msgs, bytes) = (get("net.msgs_to"), get("net.bytes_to"));
                row.push(if msgs == 0 {
                    "-".to_string()
                } else {
                    format!("{msgs}/{:.1}K", bytes as f64 / 1024.0)
                });
            }
            row
        })
        .collect();
    println!(
        "\n{} {} traffic matrix (msgs/KiB):",
        c.lang.label(),
        c.label
    );
    print!("{}", render_table(&headers_ref, &rows));
}

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    let (rest, scale) = Scale::take(rest);
    reject_unknown_args(&rest, USAGE);
    eprintln!("profiling messages across the applications ({scale:?} scale)...");

    let mut headers: Vec<String> = [
        "run", "msgs", "short", "bulk", "KiB", "creates", "switches", "syncs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for i in 0..6 {
        headers.push(match size_bucket_limit(i) {
            Some(l) if l < 1024 => format!("≤{l}B"),
            Some(l) => format!("≤{}K", l / 1024),
            None => "more".to_string(),
        });
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let cells = run_profile_suite(scale, CostModel::default().with_metrics(), jobs);
    let rows: Vec<Vec<String>> = cells.iter().map(hist_cells).collect();

    println!("Message and thread-operation profile per application run");
    println!("{}", render_table(&headers_ref, &rows));
    println!("Columns ≤64B.. are the sent-message wire-size histogram.");
    for c in &cells {
        print_traffic(c);
    }

    if let Some(path) = &json_path {
        write_json(path, &MsgProfile { cells }.to_json());
    }
}

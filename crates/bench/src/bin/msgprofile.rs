//! Message profiles: "the AM layer and the threads package have been
//! heavily instrumented to account for the number, types, and sizes of
//! message transfers as well as the number of threads, context switches,
//! and synchronization operations" — this binary prints that raw
//! instrumentation for each application and language.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin msgprofile [--quick]`

use mpmd_apps::em3d::Em3dVersion;
use mpmd_apps::water::WaterVersion;
use mpmd_bench::experiments::{run_fig5, run_fig6_lu, run_fig6_water, Cell, Scale};
use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json, JsonReport};
use mpmd_sim::size_bucket_limit;

const USAGE: &str = "msgprofile [--quick] [--json <path>]";

fn hist_cells(c: &Cell) -> Vec<String> {
    let s = &c.breakdown.counts;
    let mut out = vec![
        format!("{} {}", c.lang.label(), c.label),
        s.msgs_sent.to_string(),
        s.short_msgs.to_string(),
        s.bulk_msgs.to_string(),
        format!("{:.1}", s.bytes_sent as f64 / 1024.0),
        s.thread_creates.to_string(),
        s.context_switches.to_string(),
        s.sync_ops.to_string(),
    ];
    for i in 0..6 {
        out.push(s.msg_size_hist[i].to_string());
    }
    out
}

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, scale) = Scale::take(rest);
    reject_unknown_args(&rest, USAGE);
    eprintln!("profiling messages across the applications ({scale:?} scale)...");

    let mut headers: Vec<String> = [
        "run", "msgs", "short", "bulk", "KiB", "creates", "switches", "syncs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for i in 0..6 {
        headers.push(match size_bucket_limit(i) {
            Some(l) if l < 1024 => format!("≤{l}B"),
            Some(l) => format!("≤{}K", l / 1024),
            None => "more".to_string(),
        });
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut cells: Vec<Cell> = Vec::new();
    let jobs = mpmd_bench::runner::default_jobs();
    for (v, f, sc, cc) in run_fig5(scale, &[1.0], jobs) {
        let _ = (v, f);
        rows.push(hist_cells(&sc));
        rows.push(hist_cells(&cc));
        cells.push(sc);
        cells.push(cc);
    }
    let wsize = if scale == Scale::Paper { 64 } else { 16 };
    for (v, n, sc, cc) in run_fig6_water(scale, &[wsize], jobs) {
        let _ = (v, n);
        rows.push(hist_cells(&sc));
        rows.push(hist_cells(&cc));
        cells.push(sc);
        cells.push(cc);
    }
    let (lu_sc, lu_cc) = run_fig6_lu(scale, jobs);
    rows.push(hist_cells(&lu_sc));
    rows.push(hist_cells(&lu_cc));
    cells.push(lu_sc);
    cells.push(lu_cc);

    println!("Message and thread-operation profile per application run");
    println!("{}", render_table(&headers_ref, &rows));
    println!("Columns ≤64B.. are the sent-message wire-size histogram.");
    let _ = (Em3dVersion::Base, WaterVersion::Atomic);

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "msgprofile".to_value());
        m.insert(
            "runs".to_string(),
            serde_json::Value::Array(cells.iter().map(Cell::to_json).collect()),
        );
        write_json(path, &serde_json::Value::Object(m));
    }
}

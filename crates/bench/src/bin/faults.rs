//! Fault-injection sweep: run each application under each runtime with the
//! wire fault model off and at increasing drop rates (duplicates and
//! reordering ride along), and verify that the reliable-delivery layer
//! reproduces the fault-free application results bit for bit.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin faults [--quick] [-j N] [--seed=N] [--json <path>]`

use mpmd_bench::experiments::{run_faults, FaultCell, Scale};
use mpmd_bench::fmt::{
    cnt, reject_unknown_args, render_table, secs, take_json_flag, usage_error, write_json,
    JsonReport,
};
use mpmd_bench::runner::take_jobs_flag;

const USAGE: &str = "faults [--quick] [-j N] [--seed=N] [--json <path>]";

/// Drop rates swept (the fault model also duplicates at half the drop rate
/// and reorders at the drop rate; see `sweep_faults`). 0% exercises the
/// reliability protocol itself — sequencing, acks, timers — with no faults.
const DROPS: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

fn take_seed_flag(args: Vec<String>) -> (Vec<String>, u64) {
    let mut seed = 1997;
    let mut rest = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let v = if a == "--seed" {
            args.next()
                .unwrap_or_else(|| usage_error("--seed requires a value", USAGE))
        } else if let Some(v) = a.strip_prefix("--seed=") {
            v.to_string()
        } else {
            rest.push(a);
            continue;
        };
        seed = v
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("invalid seed '{v}'"), USAGE));
    }
    (rest, seed)
}

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    let (rest, scale) = Scale::take(rest);
    let (rest, seed) = take_seed_flag(rest);
    reject_unknown_args(&rest, USAGE);

    eprintln!("running fault-injection sweeps ({scale:?} scale, seed {seed})...");
    let cells = run_faults(scale, &DROPS, seed, jobs);

    let headers = [
        "run", "drop", "secs", "cpu%", "net%", "mgmt%", "sync%", "rt%", "retx", "timeo", "dups",
        "match",
    ];
    let rows: Vec<Vec<String>> = cells.iter().map(row).collect();
    println!("Fault-injection sweep — wire faults vs reliable delivery");
    println!("(drop = packet drop rate; duplicates at half that, reordering at the same rate)");
    println!("{}", render_table(&headers, &rows));

    let mismatches: Vec<&FaultCell> = cells.iter().filter(|c| !c.matches_baseline).collect();
    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "faults".to_value());
        m.insert("seed".to_string(), seed.to_value());
        m.insert(
            "cells".to_string(),
            serde_json::Value::Array(cells.iter().map(|c| c.to_json()).collect()),
        );
        m.insert("all_match".to_string(), mismatches.is_empty().to_value());
        write_json(path, &serde_json::Value::Object(m));
    }

    let faulty: Vec<&FaultCell> = cells.iter().filter(|c| c.drop.is_some()).collect();
    let retx: u64 = faulty.iter().map(|c| c.breakdown.counts.retransmits).sum();
    let dups: u64 = faulty.iter().map(|c| c.breakdown.counts.dup_drops).sum();
    println!("{retx} retransmissions and {dups} duplicate suppressions across faulty runs");
    if mismatches.is_empty() {
        println!("all faulty runs reproduced the fault-free application results bit for bit");
    } else {
        for c in &mismatches {
            eprintln!(
                "MISMATCH: {} {} at drop rate {:.2} diverged from its fault-free baseline",
                c.lang.label(),
                c.app,
                c.drop.unwrap_or(0.0),
            );
        }
        std::process::exit(1);
    }
}

fn row(c: &FaultCell) -> Vec<String> {
    let b = &c.breakdown;
    let parts = b.components();
    let busy = b.busy_total().max(1) as f64;
    let pct = |v: u64| format!("{:.0}%", v as f64 / busy * 100.0);
    vec![
        format!("{} {}", c.lang.label(), c.app),
        match c.drop {
            None => "off".to_string(),
            Some(d) => format!("{:.0}%", d * 100.0),
        },
        secs(mpmd_sim::to_secs(b.elapsed)),
        pct(parts[0]),
        pct(parts[1]),
        pct(parts[2]),
        pct(parts[3]),
        pct(parts[4]),
        cnt(b.counts.retransmits as f64),
        cnt(b.counts.timeouts as f64),
        cnt(b.counts.dup_drops as f64),
        if c.matches_baseline { "yes" } else { "NO" }.to_string(),
    ]
}

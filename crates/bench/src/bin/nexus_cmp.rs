//! Regenerate the §6 "Comparison with CC++/Nexus": the same applications
//! under the lean ThAM runtime vs the Nexus v3.0 (TCP/IP) baseline.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin nexus_cmp [--quick] [-j N] [--json <path>]`

use mpmd_bench::experiments::{run_nexus_cmp, Scale};
use mpmd_bench::fmt::{
    reject_unknown_args, render_table, secs, take_json_flag, write_json, JsonReport,
};
use mpmd_bench::runner::take_jobs_flag;

const USAGE: &str = "nexus_cmp [--quick] [-j N] [--json <path>]";

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    let (rest, scale) = Scale::take(rest);
    reject_unknown_args(&rest, USAGE);
    eprintln!("running CC++/ThAM vs CC++/Nexus comparison ({scale:?} scale)...");
    let cmps = run_nexus_cmp(scale, jobs);
    let rows: Vec<Vec<String>> = cmps
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                secs(c.tham_secs),
                secs(c.nexus_secs),
                format!("{:.1}x", c.ratio()),
            ]
        })
        .collect();
    println!("CC++/ThAM vs CC++/Nexus (paper: 5-6x compute-bound, 10-35x comm-bound)");
    println!(
        "{}",
        render_table(&["application", "ThAM (s)", "Nexus (s)", "speedup"], &rows)
    );
    let min = cmps.iter().map(|c| c.ratio()).fold(f64::MAX, f64::min);
    let max = cmps.iter().map(|c| c.ratio()).fold(0.0f64, f64::max);
    println!("speedup range: {min:.1}x – {max:.1}x (paper: 5x – 35x)");

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "nexus_cmp".to_value());
        m.insert(
            "comparisons".to_string(),
            serde_json::Value::Array(cmps.iter().map(|c| c.to_json()).collect()),
        );
        write_json(path, &serde_json::Value::Object(m));
    }
}

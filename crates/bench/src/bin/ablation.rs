//! Ablation benches for the design choices §4 calls out: method stub
//! caching, persistent buffers, return-buffer passing, and polling-based vs
//! interrupt-driven reception.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin ablation [iters] [-j N] [--json <path>]`

use mpmd_apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_bench::fmt::{
    reject_unknown_args, render_table, take_count, take_json_flag, take_switch, us, write_json,
    JsonReport,
};
use mpmd_bench::micro::run_table4_with;
use mpmd_bench::runner::{map_jobs, take_jobs_flag};
use mpmd_ccxx::CcxxConfig;
use mpmd_sim::CostModel;
use serde::Serialize as _;

const USAGE: &str = "ablation [iters] [-j N] [--coalescing] [--json <path>]";

fn main() {
    let (args, json_path) = take_json_flag(std::env::args().skip(1));
    let (args, jobs) = take_jobs_flag(args.into_iter());
    let (args, coalescing_axis) = take_switch(args, "--coalescing");
    let (args, iters) = take_count(args, 100, USAGE);
    reject_unknown_args(&args, USAGE);
    let mut json = serde_json::Map::new();

    let configs: Vec<(&str, CcxxConfig)> = vec![
        ("ThAM (all optimizations)", CcxxConfig::tham()),
        ("no stub caching", CcxxConfig::tham().without_stub_caching()),
        (
            "no persistent buffers",
            CcxxConfig::tham().without_persistent_buffers(),
        ),
        (
            "return-buffer passing",
            CcxxConfig::tham().with_return_buffer_passing(),
        ),
        (
            "interrupts @ 25 µs",
            CcxxConfig::tham().with_interrupts(mpmd_sim::us(25.0)),
        ),
        (
            "interrupts @ 100 µs",
            CcxxConfig::tham().with_interrupts(mpmd_sim::us(100.0)),
        ),
    ];

    eprintln!("running micro-benchmark ablations ({iters} iterations)...");
    let mut rows = Vec::new();
    let mut micro_json = serde_json::Map::new();
    let t4s = map_jobs(configs.clone(), jobs, |(name, cfg)| {
        (name, run_table4_with(cfg, CostModel::default(), iters))
    });
    for (name, t4) in &t4s {
        micro_json.insert(
            name.to_string(),
            serde_json::Value::Array(t4.iter().map(|r| r.to_json()).collect()),
        );
        let get = |n: &str| t4.iter().find(|r| r.name == n).unwrap().cc.total_us;
        rows.push(vec![
            name.to_string(),
            us(Some(get("0-Word Simple"))),
            us(Some(get("0-Word Threaded"))),
            us(Some(get("BulkWrite 40-Word"))),
            us(Some(get("BulkRead 40-Word"))),
            us(Some(get("Prefetch 20-Word"))),
        ]);
    }
    println!("Micro-benchmark totals per runtime configuration (µs)");
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "0W Simple",
                "0W Threaded",
                "BulkWrite",
                "BulkRead",
                "Prefetch/elt"
            ],
            &rows
        )
    );

    eprintln!("running em3d-bulk ablations...");
    let p = Em3dParams {
        graph_nodes: 160,
        degree: 8,
        procs: 4,
        steps: 2,
        remote_frac: 1.0,
        seed: 42,
    };
    let mut rows = Vec::new();
    let mut em3d_json = serde_json::Map::new();
    let p2 = p.clone();
    let em3d_runs = map_jobs(configs.clone(), jobs, move |(name, cfg)| {
        (
            name,
            em3d::run_ccxx(&p2, Em3dVersion::Bulk, cfg, CostModel::default()),
        )
    });
    for (name, run) in &em3d_runs {
        em3d_json.insert(
            name.to_string(),
            mpmd_sim::to_secs(run.breakdown.elapsed).to_value(),
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", mpmd_sim::to_secs(run.breakdown.elapsed)),
        ]);
    }
    println!("em3d-bulk (100% remote, reduced graph) per configuration");
    println!("{}", render_table(&["configuration", "seconds"], &rows));

    // Per-destination message coalescing (opt-in axis: the paper's runtimes
    // send every AM individually, so the default run stays exactly the
    // paper's configuration). Self-verifying: application results must be
    // bit-identical with the aggregation on, and the wire must carry
    // strictly fewer messages.
    if coalescing_axis {
        eprintln!("running em3d coalescing ablation (paper-scale, 100% remote)...");
        let p = Em3dParams::paper(1.0);
        let mut rows = Vec::new();
        let mut co_json = serde_json::Map::new();
        let cell = |run: &mpmd_apps::common::AppRun<mpmd_apps::em3d::Em3dValues>| {
            let mut m = serde_json::Map::new();
            m.insert(
                "msgs_sent".to_string(),
                run.breakdown.counts.msgs_sent.to_value(),
            );
            m.insert("net_ns".to_string(), run.breakdown.net.to_value());
            m.insert(
                "secs".to_string(),
                mpmd_sim::to_secs(run.breakdown.elapsed).to_value(),
            );
            serde_json::Value::Object(m)
        };
        let fingerprint = |v: &mpmd_apps::em3d::Em3dValues| {
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            (bits(&v.e), bits(&v.h))
        };
        let mut push =
            |lang: &str,
             co_json: &mut serde_json::Map,
             off: &mpmd_apps::common::AppRun<mpmd_apps::em3d::Em3dValues>,
             on: &mpmd_apps::common::AppRun<mpmd_apps::em3d::Em3dValues>| {
                assert_eq!(
                    fingerprint(&off.output),
                    fingerprint(&on.output),
                    "{lang}: coalescing changed em3d results"
                );
                let (m_off, m_on) = (
                    off.breakdown.counts.msgs_sent,
                    on.breakdown.counts.msgs_sent,
                );
                assert!(
                    m_on < m_off,
                    "{lang}: coalescing did not reduce wire messages ({m_on} vs {m_off})"
                );
                assert!(
                    on.breakdown.net < off.breakdown.net,
                    "{lang}: coalescing did not reduce net time"
                );
                let drop_pct = 100.0 * (m_off - m_on) as f64 / m_off as f64;
                let mut m = serde_json::Map::new();
                m.insert("off".to_string(), cell(off));
                m.insert("on".to_string(), cell(on));
                m.insert("msgs_drop_pct".to_string(), drop_pct.to_value());
                co_json.insert(lang.to_string(), serde_json::Value::Object(m));
                for (label, r) in [("off", off), ("on", on)] {
                    rows.push(vec![
                        format!("{lang} {label}"),
                        format!("{}", r.breakdown.counts.msgs_sent),
                        format!("{:.0}", r.breakdown.net as f64 / 1_000.0),
                        format!("{:.4}", mpmd_sim::to_secs(r.breakdown.elapsed)),
                    ]);
                }
                drop_pct
            };
        let sc_off = em3d::run_splitc_coalesced(&p, Em3dVersion::Ghost, CostModel::default(), None);
        let sc_on = em3d::run_splitc_coalesced(
            &p,
            Em3dVersion::Ghost,
            CostModel::default(),
            Some(mpmd_splitc::CoalesceConfig::default()),
        );
        let sc_drop = push("splitc-ghost", &mut co_json, &sc_off, &sc_on);
        assert!(
            sc_drop >= 25.0,
            "splitc-ghost: wire message drop only {sc_drop:.1}% (< 25%)"
        );
        let cc_off = em3d::run_ccxx(
            &p,
            Em3dVersion::Ghost,
            CcxxConfig::tham(),
            CostModel::default(),
        );
        let cc_on = em3d::run_ccxx(
            &p,
            Em3dVersion::Ghost,
            CcxxConfig::tham().with_coalescing(mpmd_ccxx::CoalesceConfig::default()),
            CostModel::default(),
        );
        push("ccxx-ghost", &mut co_json, &cc_off, &cc_on);
        println!("em3d per-destination coalescing (paper graph, 100% remote)");
        println!(
            "{}",
            render_table(
                &["configuration", "wire msgs", "net (µs)", "seconds"],
                &rows
            )
        );
        println!("  (results bit-identical in both runtimes; splitc drop {sc_drop:.1}%)");
        json.insert(
            "em3d_coalescing".to_string(),
            serde_json::Value::Object(co_json),
        );
    }

    // Optimistic Active Messages (§7 related work, implemented as an
    // extension): compare a null RMI under Threaded vs Optimistic dispatch
    // for methods that can and cannot block.
    eprintln!("running OAM comparison...");
    let oam = mpmd_bench::micro::measure_oam(iters);
    let mut rows = Vec::new();
    let mut oam_json = serde_json::Map::new();
    for (name, v) in oam {
        oam_json.insert(name.to_string(), v.to_value());
        rows.push(vec![name.to_string(), us(Some(v))]);
    }
    println!("Optimistic Active Messages (null RMI total, µs)");
    println!("{}", render_table(&["dispatch", "total"], &rows));

    if let Some(path) = &json_path {
        json.insert("table".to_string(), "ablation".to_value());
        json.insert("iters".to_string(), iters.to_value());
        json.insert("micro".to_string(), serde_json::Value::Object(micro_json));
        json.insert(
            "em3d_bulk_secs".to_string(),
            serde_json::Value::Object(em3d_json),
        );
        json.insert(
            "oam_total_us".to_string(),
            serde_json::Value::Object(oam_json),
        );
        write_json(path, &serde_json::Value::Object(json));
    }
}

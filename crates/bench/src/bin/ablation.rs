//! Ablation benches for the design choices §4 calls out: method stub
//! caching, persistent buffers, return-buffer passing, and polling-based vs
//! interrupt-driven reception.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin ablation [iters] [-j N] [--json <path>]`

use mpmd_apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_bench::fmt::{
    reject_unknown_args, render_table, take_count, take_json_flag, us, write_json,
};
use mpmd_bench::micro::run_table4_with;
use mpmd_bench::runner::{map_jobs, take_jobs_flag};
use mpmd_ccxx::CcxxConfig;
use mpmd_sim::CostModel;
use serde::Serialize as _;

const USAGE: &str = "ablation [iters] [-j N] [--json <path>]";

fn main() {
    let (args, json_path) = take_json_flag(std::env::args().skip(1));
    let (args, jobs) = take_jobs_flag(args.into_iter());
    let (args, iters) = take_count(args, 100, USAGE);
    reject_unknown_args(&args, USAGE);
    let mut json = serde_json::Map::new();

    let configs: Vec<(&str, CcxxConfig)> = vec![
        ("ThAM (all optimizations)", CcxxConfig::tham()),
        ("no stub caching", CcxxConfig::tham().without_stub_caching()),
        (
            "no persistent buffers",
            CcxxConfig::tham().without_persistent_buffers(),
        ),
        (
            "return-buffer passing",
            CcxxConfig::tham().with_return_buffer_passing(),
        ),
        (
            "interrupts @ 25 µs",
            CcxxConfig::tham().with_interrupts(mpmd_sim::us(25.0)),
        ),
        (
            "interrupts @ 100 µs",
            CcxxConfig::tham().with_interrupts(mpmd_sim::us(100.0)),
        ),
    ];

    eprintln!("running micro-benchmark ablations ({iters} iterations)...");
    let mut rows = Vec::new();
    let mut micro_json = serde_json::Map::new();
    let t4s = map_jobs(configs.clone(), jobs, |(name, cfg)| {
        (name, run_table4_with(cfg, CostModel::default(), iters))
    });
    for (name, t4) in &t4s {
        micro_json.insert(
            name.to_string(),
            serde_json::Value::Array(t4.iter().map(|r| r.to_json()).collect()),
        );
        let get = |n: &str| t4.iter().find(|r| r.name == n).unwrap().cc.total_us;
        rows.push(vec![
            name.to_string(),
            us(Some(get("0-Word Simple"))),
            us(Some(get("0-Word Threaded"))),
            us(Some(get("BulkWrite 40-Word"))),
            us(Some(get("BulkRead 40-Word"))),
            us(Some(get("Prefetch 20-Word"))),
        ]);
    }
    println!("Micro-benchmark totals per runtime configuration (µs)");
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "0W Simple",
                "0W Threaded",
                "BulkWrite",
                "BulkRead",
                "Prefetch/elt"
            ],
            &rows
        )
    );

    eprintln!("running em3d-bulk ablations...");
    let p = Em3dParams {
        graph_nodes: 160,
        degree: 8,
        procs: 4,
        steps: 2,
        remote_frac: 1.0,
        seed: 42,
    };
    let mut rows = Vec::new();
    let mut em3d_json = serde_json::Map::new();
    let p2 = p.clone();
    let em3d_runs = map_jobs(configs.clone(), jobs, move |(name, cfg)| {
        (
            name,
            em3d::run_ccxx(&p2, Em3dVersion::Bulk, cfg, CostModel::default()),
        )
    });
    for (name, run) in &em3d_runs {
        em3d_json.insert(
            name.to_string(),
            mpmd_sim::to_secs(run.breakdown.elapsed).to_value(),
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", mpmd_sim::to_secs(run.breakdown.elapsed)),
        ]);
    }
    println!("em3d-bulk (100% remote, reduced graph) per configuration");
    println!("{}", render_table(&["configuration", "seconds"], &rows));

    // Optimistic Active Messages (§7 related work, implemented as an
    // extension): compare a null RMI under Threaded vs Optimistic dispatch
    // for methods that can and cannot block.
    eprintln!("running OAM comparison...");
    let oam = mpmd_bench::micro::measure_oam(iters);
    let mut rows = Vec::new();
    let mut oam_json = serde_json::Map::new();
    for (name, v) in oam {
        oam_json.insert(name.to_string(), v.to_value());
        rows.push(vec![name.to_string(), us(Some(v))]);
    }
    println!("Optimistic Active Messages (null RMI total, µs)");
    println!("{}", render_table(&["dispatch", "total"], &rows));

    if let Some(path) = &json_path {
        json.insert("table".to_string(), "ablation".to_value());
        json.insert("iters".to_string(), iters.to_value());
        json.insert("micro".to_string(), serde_json::Value::Object(micro_json));
        json.insert(
            "em3d_bulk_secs".to_string(),
            serde_json::Value::Object(em3d_json),
        );
        json.insert(
            "oam_total_us".to_string(),
            serde_json::Value::Object(oam_json),
        );
        write_json(path, &serde_json::Value::Object(json));
    }
}

//! `explore` — schedule/fault exploration harness (mini model checker).
//!
//! Seed-samples perturbations of every engine don't-care point (runnable
//! node tie-breaks, same-time event application order across nodes, forced
//! fast-path detours) over a fixed set of small workloads, and checks the
//! invariants that must hold under ANY legal schedule: byte-identical
//! reports (fault-free, and for the event-tie class under faults),
//! application-checksum identity, zero allocations on the short-message
//! path, and replay fidelity of recorded decision traces. Failing
//! perturbations are shrunk to minimal traces and written as corpus JSON
//! entries.
//!
//! The process installs a counting `#[global_allocator]` so the
//! alloc-probed configuration can measure the steady-state window. The
//! count is **per thread** (const-initialized native TLS, so bumping it
//! never itself allocates): probed runs execute sequentially on the driver
//! thread — under the fiber backend the whole simulation runs there — and
//! per-thread counting keeps any helper thread's lazy allocations (e.g. a
//! blocking channel's first-use `Context`) out of the measured window.

use mpmd_bench::explore::{pin_corpus, sweep, SweepOptions};
use mpmd_bench::fmt::{reject_unknown_args, take_json_flag, take_switch, usage_error, write_json};
use mpmd_bench::runner::take_jobs_flag;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "explore [--quick] [--seeds N] [--corpus-dir DIR] \
                     [--pin-corpus DIR] [-j N] [--json <path>]";

struct Counting;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(l) }
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(p, l, n) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn alloc_count() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Parse `--seeds N` / `--seeds=N`.
fn take_seeds_flag(args: Vec<String>) -> (Vec<String>, Option<usize>) {
    let mut rest = Vec::new();
    let mut seeds = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--seeds" {
            let v = it
                .next()
                .unwrap_or_else(|| usage_error("--seeds requires a value", USAGE));
            seeds = Some(parse_seeds(&v));
        } else if let Some(v) = a.strip_prefix("--seeds=") {
            seeds = Some(parse_seeds(v));
        } else {
            rest.push(a);
        }
    }
    (rest, seeds)
}

fn parse_seeds(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => usage_error("--seeds takes a positive integer", USAGE),
    }
}

/// Parse `--NAME DIR` / `--NAME=DIR` for a path-valued flag.
fn take_path_flag(args: Vec<String>, name: &str) -> (Vec<String>, Option<PathBuf>) {
    let mut rest = Vec::new();
    let mut dir = None;
    let prefix = format!("{name}=");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == name {
            let v = it
                .next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value"), USAGE));
            dir = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix(&prefix) {
            dir = Some(PathBuf::from(v));
        } else {
            rest.push(a);
        }
    }
    (rest, dir)
}

fn main() {
    // Fail fast on a bad MPMD_SIM_BACKEND instead of panicking mid-sweep.
    if let Err(e) = mpmd_sim::backend_from_env() {
        usage_error(&e, USAGE);
    }

    let (args, json_path) = take_json_flag(std::env::args().skip(1));
    let (args, jobs) = take_jobs_flag(args.into_iter());
    let (args, quick) = take_switch(args, "--quick");
    let (args, seeds) = take_seeds_flag(args);
    let (args, corpus_dir) = take_path_flag(args, "--corpus-dir");
    let (args, pin_dir) = take_path_flag(args, "--pin-corpus");
    reject_unknown_args(&args, USAGE);

    // Regenerate the pinned-schedule corpus (known-good recorded traces
    // that `bench/tests/explore_corpus.rs` replays) and exit.
    if let Some(dir) = pin_dir {
        std::fs::create_dir_all(&dir).expect("create pin dir");
        let entries = pin_corpus();
        for e in &entries {
            let path = dir.join(format!("{}-seed{}.json", e.config, e.spec.seed));
            write_json(&path, &e.corpus_json());
            println!("pinned {} ({} decisions)", path.display(), e.trace.len());
        }
        println!("{} pinned schedules written", entries.len());
        return;
    }

    // 5 configs × 2 classes: quick = 50 seeds/class → 510+ perturbations,
    // well past the 500 the CI gate requires and comfortably inside its
    // 60 s budget.
    let seeds_per_class = seeds.unwrap_or(if quick { 50 } else { 150 });
    let opts = SweepOptions {
        seeds_per_class,
        jobs,
        replay_every: 16,
    };

    println!(
        "exploring {} seeded perturbations per class per config ({} workers)",
        seeds_per_class, opts.jobs
    );
    let start = Instant::now();
    let summary = sweep(&opts, Some(alloc_count), |line| println!("  {line}"));
    let elapsed = start.elapsed();

    println!(
        "{} configurations, {} perturbations, {} replay checks in {:.1}s",
        summary.configs,
        summary.perturbations,
        summary.replays,
        elapsed.as_secs_f64()
    );

    if let Some(dir) = &corpus_dir {
        if !summary.violations.is_empty() {
            std::fs::create_dir_all(dir).expect("create corpus dir");
        }
        for (i, v) in summary.violations.iter().enumerate() {
            let path = dir.join(format!("{}-{}-{i}.json", v.config, v.spec.seed));
            write_json(&path, &v.corpus_json());
        }
    }

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "explore".to_value());
        m.insert("configs".to_string(), (summary.configs as u64).to_value());
        m.insert(
            "perturbations".to_string(),
            (summary.perturbations as u64).to_value(),
        );
        m.insert("replays".to_string(), (summary.replays as u64).to_value());
        m.insert("elapsed_secs".to_string(), elapsed.as_secs_f64().to_value());
        m.insert(
            "violations".to_string(),
            serde_json::Value::Array(summary.violations.iter().map(|v| v.corpus_json()).collect()),
        );
        write_json(path, &serde_json::Value::Object(m));
    }

    if summary.violations.is_empty() {
        println!("zero invariant violations");
    } else {
        eprintln!("{} INVARIANT VIOLATIONS:", summary.violations.len());
        for v in &summary.violations {
            eprintln!(
                "  [{}] {} ({} backend, seed {}): {} (shrunk trace: {:?})",
                v.kind, v.config, v.backend, v.spec.seed, v.detail, v.trace
            );
        }
        std::process::exit(1);
    }
}

//! Regenerate Table 4: micro-benchmark results for CC++/ThAM vs Split-C,
//! with the paper's values alongside.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin table4 [iters] [--json <path>]`

use mpmd_bench::fmt::{
    cnt, reject_unknown_args, render_table, take_count, take_json_flag, us, write_json, JsonReport,
};
use mpmd_bench::micro::{measure_mpl_rtt, run_table4};

const USAGE: &str = "table4 [iters] [--json <path>]";

fn main() {
    let (args, json_path) = take_json_flag(std::env::args().skip(1));
    let (args, iters) = take_count(args, 200, USAGE);
    reject_unknown_args(&args, USAGE);
    eprintln!("running Table 4 micro-benchmarks ({iters} iterations each)...");
    let rows = run_table4(iters);

    let headers = [
        "benchmark",
        "cc Total",
        "(paper)",
        "cc AM",
        "(paper)",
        "cc Thr",
        "(paper)",
        "yield",
        "create",
        "sync",
        "cc Rt",
        "(paper)",
        "sc Total",
        "(paper)",
        "sc AM",
        "sc Rt",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                us(Some(r.cc.total_us)),
                us(Some(r.paper_cc.0)),
                us(Some(r.cc.am_us)),
                us(Some(r.paper_cc.1)),
                us(Some(r.cc.threads_us)),
                us(Some(r.paper_cc.2)),
                cnt(r.cc.yields),
                cnt(r.cc.creates),
                cnt(r.cc.syncs),
                us(Some(r.cc.runtime_us)),
                us(Some(r.paper_cc.3)),
                us(r.sc.as_ref().map(|m| m.total_us)),
                us(r.paper_sc.map(|p| p.0)),
                us(r.sc.as_ref().map(|m| m.am_us)),
                us(r.sc.as_ref().map(|m| m.runtime_us)),
            ]
        })
        .collect();

    println!("Table 4 — micro-benchmark results (all times in µs; per element for Prefetch)");
    println!("{}", render_table(&headers, &table));
    let mpl = measure_mpl_rtt();

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "table4".to_value());
        m.insert("iters".to_string(), iters.to_value());
        m.insert("mpl_rtt_us".to_string(), mpl.to_value());
        m.insert(
            "rows".to_string(),
            serde_json::Value::Array(rows.iter().map(|r| r.to_json()).collect()),
        );
        write_json(path, &serde_json::Value::Object(m));
    }
    println!("IBM MPL null round trip: {mpl:.0} µs (paper: 88 µs)");
    let simple = &rows[0];
    println!(
        "0-Word Simple is {:.0} µs over the raw AM round trip (paper: 12) and {:.0} µs faster than MPL (paper: 21)",
        simple.cc.total_us - 55.0,
        mpl - simple.cc.total_us,
    );
}

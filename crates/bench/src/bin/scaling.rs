//! Transfer-size scaling: the paper notes that em3d-bulk moves only "about
//! 5 bytes [per edge]" and that "to really observe a significant hit [from
//! CC++'s extra copying], the problem size has to be increased by a factor
//! of about 200". This binary sweeps the per-peer transfer size of a bulk
//! exchange and reports where the MPMD copying penalty becomes significant,
//! locating that crossover.
//!
//! Usage: `cargo run --release -p mpmd-bench --bin scaling [-j N] [--json <path>]`

use mpmd_bench::fmt::{reject_unknown_args, render_table, take_json_flag, write_json};
use mpmd_bench::runner::{run_jobs, take_jobs_flag, Unit};

const USAGE: &str = "scaling [-j N] [--json <path>]";
use mpmd_ccxx as cx;
use mpmd_ccxx::{CcxxConfig, CxPtr};
use mpmd_sim::{to_us, Sim};
use mpmd_splitc as sc;
use mpmd_splitc::GlobalPtr;
use parking_lot::Mutex;
use std::sync::Arc;

const PROCS: usize = 4;

fn splitc_exchange(len: usize) -> f64 {
    let out = Arc::new(Mutex::new(0.0));
    let o = Arc::clone(&out);
    Sim::new(PROCS).run(move |ctx| {
        sc::init(&ctx);
        let region = sc::alloc_region(&ctx, len * PROCS, 0.0);
        sc::barrier(&ctx);
        let t0 = ctx.now();
        // The application context: an EM3D-phase worth of computation
        // accompanies each exchange (4000 edge traversals x ~0.3 µs).
        ctx.charge(mpmd_sim::Bucket::Cpu, 1_200_000);
        let vals = vec![1.5f64; len];
        for q in 0..PROCS {
            if q != ctx.node() {
                sc::bulk_store(
                    &ctx,
                    GlobalPtr {
                        node: q,
                        region,
                        offset: len * ctx.node(),
                    },
                    &vals,
                );
            }
        }
        sc::all_store_sync(&ctx);
        if ctx.node() == 0 {
            *o.lock() = to_us(ctx.now() - t0);
        }
        sc::barrier(&ctx);
    });
    let v = *out.lock();
    v
}

fn ccxx_exchange(len: usize) -> f64 {
    let out = Arc::new(Mutex::new(0.0));
    let o = Arc::clone(&out);
    Sim::new(PROCS).run(move |ctx| {
        cx::init(&ctx, CcxxConfig::tham());
        let region = cx::alloc_region(&ctx, len * PROCS, 0.0);
        cx::barrier(&ctx);
        exchange_once(&ctx, region, len); // warm caches and buffers
        let t0 = ctx.now();
        ctx.charge(mpmd_sim::Bucket::Cpu, 1_200_000);
        exchange_once(&ctx, region, len);
        cx::barrier(&ctx);
        if ctx.node() == 0 {
            *o.lock() = to_us(ctx.now() - t0);
        }
        cx::finalize(&ctx);
    });
    let v = *out.lock();
    v
}

fn exchange_once(ctx: &mpmd_sim::Ctx, region: u32, len: usize) {
    let mut bodies: Vec<Box<dyn FnOnce(mpmd_sim::Ctx) + Send>> = Vec::new();
    for q in 0..PROCS {
        if q != ctx.node() {
            let vals = vec![1.5f64; len];
            let dst = CxPtr {
                node: q,
                region,
                offset: len * ctx.node(),
            };
            bodies.push(Box::new(move |cctx| {
                // Flat arrays, like em3d-bulk: the penalty measured here is
                // copying, not per-element serialization.
                cx::bulk_put_flat(&cctx, dst, &vals);
            }));
        }
    }
    cx::par(ctx, bodies);
    cx::barrier(ctx);
}

fn main() {
    let (rest, json_path) = take_json_flag(std::env::args().skip(1));
    let (rest, jobs) = take_jobs_flag(rest.into_iter());
    reject_unknown_args(&rest, USAGE);
    println!("Bulk-exchange gap vs per-peer transfer size ({PROCS} nodes, flat arrays,\nwith an EM3D phase of computation per exchange)");
    println!();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut crossover: Option<usize> = None;
    // EM3D at the paper's scale moves ~100 doubles per peer per phase.
    let base_doubles = 100usize;
    let mults = [1usize, 4, 16, 64, 200, 800];
    // Each (size, language) exchange is one independent simulation.
    let mut units: Vec<Unit<f64>> = Vec::new();
    for &mult in &mults {
        let len = base_doubles * mult;
        units.push(Box::new(move || splitc_exchange(len)));
        units.push(Box::new(move || ccxx_exchange(len)));
    }
    let mut measured = run_jobs(units, jobs).into_iter();
    for mult in mults {
        let len = base_doubles * mult;
        let scv = measured.next().expect("missing split-c run");
        let ccv = measured.next().expect("missing cc++ run");
        let ratio = ccv / scv;
        if crossover.is_none() && ratio >= 2.0 {
            crossover = Some(mult);
        }
        {
            use serde::Serialize as _;
            let mut o = serde_json::Map::new();
            o.insert("scale".to_string(), mult.to_value());
            o.insert("bytes_per_peer".to_string(), (len * 8).to_value());
            o.insert("splitc_us".to_string(), scv.to_value());
            o.insert("ccxx_us".to_string(), ccv.to_value());
            o.insert("gap".to_string(), ratio.to_value());
            json_rows.push(serde_json::Value::Object(o));
        }
        rows.push(vec![
            format!("{mult}x"),
            format!("{}", len * 8),
            format!("{scv:.0}"),
            format!("{ccv:.0}"),
            format!("{ratio:.2}"),
        ]);
    }

    if let Some(path) = &json_path {
        use serde::Serialize as _;
        let mut m = serde_json::Map::new();
        m.insert("table".to_string(), "scaling".to_value());
        m.insert("rows".to_string(), serde_json::Value::Array(json_rows));
        m.insert(
            "crossover_scale".to_string(),
            match crossover {
                Some(c) => c.to_value(),
                None => serde_json::Value::Null,
            },
        );
        write_json(path, &serde_json::Value::Object(m));
    }
    println!(
        "{}",
        render_table(
            &[
                "problem scale",
                "bytes/peer",
                "split-c µs",
                "cc++ µs",
                "gap"
            ],
            &rows
        )
    );
    match crossover {
        Some(m) => println!(
            "With an EM3D phase's computation accompanying each exchange, the\n\
             copying penalty exceeds 2x at ~{m}x the per-edge data volume. The\n\
             paper estimated 'a factor of about 200'; the crossover point is\n\
             set by the compute-to-byte ratio, which is lower here than in\n\
             the paper's (more compute-dominated) bulk configuration."
        ),
        None => println!("No 2x crossover in the swept range."),
    }
}

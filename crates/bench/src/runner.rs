//! Parallel experiment runner: fan independent `Sim` runs across a scoped
//! thread pool.
//!
//! Every experiment configuration is an isolated simulation — no shared
//! state, a deterministic virtual-time result — so a sweep like Figure 5's
//! 24 configurations is embarrassingly parallel. [`run_jobs`] executes a
//! list of boxed work units on up to `jobs` OS threads and returns results
//! **in submission order** regardless of completion order, so tables and
//! `--json` files are byte-identical to a sequential run. All experiment
//! binaries accept `-j N` / `--jobs N` (parsed by [`take_jobs_flag`]),
//! defaulting to the machine's available parallelism.
//!
//! Worker counts above the machine's available parallelism are clamped:
//! every simulation is CPU-bound and internally serialized by the baton
//! protocol, so oversubscribing cores cannot increase throughput — it only
//! adds OS scheduler churn (measurably so on small machines). `-j` is
//! therefore an upper bound, never a demand.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

/// A single unit of experiment work producing one result.
pub type Unit<R> = Box<dyn FnOnce() -> R + Send>;

/// First panic payload captured from a worker thread.
type PanicPayload = Box<dyn std::any::Any + Send>;

/// Lock ignoring poisoning: the pool catches unit panics before they can
/// unwind through a held guard, and a poisoned queue or slot must not
/// replace the original panic message with `PoisonError`'s.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `units` on up to `jobs` worker threads (clamped to
/// [`default_jobs`]), returning the results in the order the units were
/// supplied (index-addressed slots, not completion order). An effective
/// worker count of one runs everything inline on the calling thread with no
/// pool at all. A panicking unit propagates out of the scope, as it would
/// sequentially.
pub fn run_jobs<R: Send>(units: Vec<Unit<R>>, jobs: usize) -> Vec<R> {
    run_jobs_on(units, jobs.min(default_jobs()))
}

/// [`run_jobs`] without the available-parallelism clamp. Exercised directly
/// by tests so the multi-worker path is covered even on one-CPU machines.
///
/// A panicking unit is caught on its worker, recorded (first panic wins),
/// and re-raised on the calling thread with its original payload — exactly
/// the message a sequential run would show. Letting the panic unwind the
/// worker instead would poison the shared queue and surface as
/// `std::thread::scope`'s generic "a scoped thread panicked", masking the
/// real failure. Remaining workers drain out without starting new units.
fn run_jobs_on<R: Send>(units: Vec<Unit<R>>, workers: usize) -> Vec<R> {
    let n = units.len();
    if workers <= 1 || n <= 1 {
        return units.into_iter().map(|u| u()).collect();
    }
    let queue: Mutex<VecDeque<(usize, Unit<R>)>> =
        Mutex::new(units.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                if lock(&first_panic).is_some() {
                    return;
                }
                let next = lock(&queue).pop_front();
                let Some((i, unit)) = next else { return };
                match catch_unwind(AssertUnwindSafe(unit)) {
                    Ok(r) => *lock(&slots[i]) = Some(r),
                    Err(p) => {
                        let mut fp = lock(&first_panic);
                        if fp.is_none() {
                            *fp = Some(p);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(p) = lock(&first_panic).take() {
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|m| {
            lock(&m)
                .take()
                .expect("work unit completed without a result")
        })
        .collect()
}

/// Convenience wrapper with [`run_jobs`] semantics (same ordering and
/// clamping) for mapping a plain function over owned items.
pub fn map_jobs<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    let f = &f;
    let workers = jobs.min(default_jobs());
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                if lock(&first_panic).is_some() {
                    return;
                }
                let next = lock(&queue).pop_front();
                let Some((i, item)) = next else { return };
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => *lock(&slots[i]) = Some(r),
                    Err(p) => {
                        let mut fp = lock(&first_panic);
                        if fp.is_none() {
                            *fp = Some(p);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(p) = lock(&first_panic).take() {
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|m| {
            lock(&m)
                .take()
                .expect("work unit completed without a result")
        })
        .collect()
}

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split a `-j N` / `--jobs N` (also `-jN`, `--jobs=N`) flag off a raw
/// argument list, returning the remaining arguments and the requested
/// worker count (defaulting to [`default_jobs`] when the flag is absent).
/// The available-parallelism clamp is applied by [`run_jobs`]/[`map_jobs`],
/// not here, so flag parsing is machine-independent.
pub fn take_jobs_flag(args: impl Iterator<Item = String>) -> (Vec<String>, usize) {
    let mut rest = Vec::new();
    let mut jobs = None;
    let mut args = args.peekable();
    let parse = |s: &str| -> usize {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid job count '{s}'");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        if a == "-j" || a == "--jobs" {
            let Some(v) = args.next() else {
                eprintln!("error: {a} requires a count argument");
                std::process::exit(2);
            };
            jobs = Some(parse(&v));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = Some(parse(v));
        } else if let Some(v) = a.strip_prefix("-j").filter(|v| !v.is_empty()) {
            jobs = Some(parse(v));
        } else {
            rest.push(a);
        }
    }
    (rest, jobs.unwrap_or_else(default_jobs).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        // Drive the unclamped pool path so multi-worker reassembly is
        // tested even when the host has a single CPU.
        for workers in [1, 2, 8] {
            let units: Vec<Unit<usize>> = (0..32usize)
                .map(|i| {
                    Box::new(move || {
                        // Stagger completion so out-of-order finishes would
                        // be caught by the order assertion below.
                        std::thread::sleep(std::time::Duration::from_micros(
                            ((i * 37) % 13) as u64,
                        ));
                        i
                    }) as Unit<usize>
                })
                .collect();
            assert_eq!(run_jobs_on(units, workers), (0..32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_jobs_matches_sequential_map() {
        let items: Vec<u64> = (0..20).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(map_jobs(items, 4, |x| x * x), seq);
    }

    #[test]
    fn worker_panic_surfaces_original_message() {
        let units: Vec<Unit<usize>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("unit 3 exploded");
                    }
                    i
                }) as Unit<usize>
            })
            .collect();
        let payload = catch_unwind(AssertUnwindSafe(|| run_jobs_on(units, 4))).unwrap_err();
        // The caller sees the unit's own panic payload, not scope's generic
        // "a scoped thread panicked" or a PoisonError.
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"unit 3 exploded"));
    }

    #[test]
    fn map_jobs_panic_surfaces_original_message() {
        let items: Vec<u64> = (0..8).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            map_jobs(items, 4, |x| {
                assert_ne!(x, 5, "item 5 rejected");
                x
            })
        }))
        .unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert!(msg.contains("item 5 rejected"), "got: {msg}");
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |argv: &[&str]| take_jobs_flag(argv.iter().map(|s| s.to_string()));
        let (rest, j) = parse(&["--quick", "-j", "4"]);
        assert_eq!(rest, vec!["--quick"]);
        assert_eq!(j, 4);
        let (_, j) = parse(&["-j8"]);
        assert_eq!(j, 8);
        let (_, j) = parse(&["--jobs=2"]);
        assert_eq!(j, 2);
        let (_, j) = parse(&["--jobs", "16"]);
        assert_eq!(j, 16);
        let (rest, j) = parse(&["--jobs", "0"]);
        assert!(rest.is_empty());
        assert_eq!(j, 1, "zero clamps to one worker");
        let (rest, _) = parse(&[]);
        assert!(rest.is_empty());
    }
}

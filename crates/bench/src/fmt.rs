//! Plain-text table formatting for the experiment binaries, plus the shared
//! `--json <path>` machine-readable output flag.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Version of the `--json` report schema shared by every experiment binary.
/// Every top-level report object carries it as `"schema_version"`
/// (inserted by [`write_json`]); bump it when a field changes meaning or
/// shape so downstream consumers can detect incompatible output.
pub const SCHEMA_VERSION: u64 = 2;

/// Split a `--json <path>` flag off a raw argument list (everything after
/// the program name), returning the remaining positional arguments and the
/// requested output path. Every experiment binary accepts this flag and
/// writes its results as JSON next to the human-readable table.
pub fn take_json_flag(args: impl Iterator<Item = String>) -> (Vec<String>, Option<PathBuf>) {
    let mut rest = Vec::new();
    let mut json = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            let Some(p) = args.next() else {
                eprintln!("error: --json requires a path argument");
                eprintln!("usage: --json <path> (or --json=<path>)");
                std::process::exit(2);
            };
            json = Some(PathBuf::from(p));
        } else if let Some(p) = a.strip_prefix("--json=") {
            json = Some(PathBuf::from(p));
        } else {
            rest.push(a);
        }
    }
    (rest, json)
}

/// Split a bare switch (e.g. `--quick`) off a raw argument list, returning
/// the remaining arguments and whether the switch was present.
pub fn take_switch(args: impl IntoIterator<Item = String>, name: &str) -> (Vec<String>, bool) {
    let mut present = false;
    let rest = args
        .into_iter()
        .filter(|a| {
            if a == name {
                present = true;
                false
            } else {
                true
            }
        })
        .collect();
    (rest, present)
}

/// Print `error: <msg>` plus the binary's usage line and exit non-zero.
pub fn usage_error(msg: &str, usage: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Reject any argument no parser consumed. Every experiment binary calls
/// this after stripping its known flags, so an unknown or misspelled flag
/// fails loudly instead of silently running the default configuration.
/// `-h`/`--help` print the usage line and exit zero.
pub fn reject_unknown_args(rest: &[String], usage: &str) {
    if rest.iter().any(|a| a == "-h" || a == "--help") {
        println!("usage: {usage}");
        std::process::exit(0);
    }
    if let Some(a) = rest.first() {
        usage_error(&format!("unrecognized argument '{a}'"), usage);
    }
}

/// Parse an optional leading positional count (e.g. an iteration count),
/// exiting with the usage line on malformed input instead of silently
/// substituting the default.
pub fn take_count(args: Vec<String>, default: usize, usage: &str) -> (Vec<String>, usize) {
    match args.split_first() {
        // Leave help requests for `reject_unknown_args` to answer.
        Some((first, rest)) if first != "-h" && first != "--help" => match first.parse() {
            Ok(n) => (rest.to_vec(), n),
            Err(_) => usage_error(&format!("invalid count '{first}'"), usage),
        },
        _ => (args, default),
    }
}

/// A report row of a `--json` output: the type lists its fields once and
/// gets the object assembly (and the alphabetical key order guaranteed by
/// the `BTreeMap`-backed [`serde_json::Map`]) from the default method.
/// Replaces the hand-rolled per-type `to_json` map-building the experiment
/// types and binaries used to copy-paste; `experiments::golden_tests`
/// pins the rendered bytes against a golden captured before the collapse.
pub trait JsonReport {
    /// The object's (key, value) fields. Order is irrelevant — rendering
    /// sorts keys — so implementors list identity fields first for
    /// readability.
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)>;

    /// The JSON object written by the binaries' `--json` flag.
    fn to_json(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        for (k, v) in self.json_fields() {
            m.insert(k.to_string(), v);
        }
        serde_json::Value::Object(m)
    }
}

/// A JSON object keyed by cost-bucket label ([`mpmd_sim::Bucket::label`]),
/// one entry per bucket — the shape every per-bucket breakdown uses.
pub fn bucket_object(f: impl Fn(mpmd_sim::Bucket) -> serde_json::Value) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    for b in mpmd_sim::Bucket::ALL {
        m.insert(b.label().to_string(), f(b));
    }
    serde_json::Value::Object(m)
}

/// Write a JSON value to `path` (creating parent directories), with a
/// trailing newline. Used by the experiment binaries for `--json` output.
/// Top-level objects are stamped with [`SCHEMA_VERSION`] as
/// `"schema_version"` so every report self-identifies its format.
pub fn write_json(path: &Path, value: &serde_json::Value) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
        }
    }
    let stamped;
    let value = match value {
        serde_json::Value::Object(m) => {
            let mut m = m.clone();
            m.insert("schema_version".to_string(), SCHEMA_VERSION.to_value());
            stamped = serde_json::Value::Object(m);
            &stamped
        }
        other => other,
    };
    let mut text = serde_json::to_string_pretty(value).expect("JSON serialization failed");
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Render a fixed-width table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format a µs value with one decimal, or `-` for absent entries.
pub fn us(v: Option<f64>) -> String {
    match v {
        Some(v) if v >= 100.0 => format!("{v:.0}"),
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

/// Format a count with one decimal.
pub fn cnt(v: f64) -> String {
    if (v - v.round()).abs() < 0.05 {
        format!("{:.0}", v.round())
    } else {
        format!("{v:.1}")
    }
}

/// Format seconds with three decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

/// Segment glyphs for the five breakdown components, in the paper's order
/// (cpu, net, thread mgmt, thread sync, runtime).
pub const BAR_GLYPHS: [char; 5] = ['█', '░', '▓', '▒', '◆'];

/// Legend line for [`stacked_bar`].
pub fn bar_legend() -> String {
    let labels = ["cpu", "net", "thread mgmt", "thread sync", "runtime"];
    BAR_GLYPHS
        .iter()
        .zip(labels)
        .map(|(g, l)| format!("{g} {l}"))
        .collect::<Vec<_>>()
        .join("   ")
}

/// Render one stacked bar: `components` are the five cost components, and
/// `len` is the total bar length in characters (callers scale it by the
/// normalized height, reproducing the paper's normalized stacked-bar
/// figures). Segments are rounded to whole characters but always sum to
/// `len` when `len > 0`.
pub fn stacked_bar(components: [u64; 5], len: usize) -> String {
    let total: u64 = components.iter().sum();
    if total == 0 || len == 0 {
        return String::new();
    }
    let mut widths = [0usize; 5];
    let mut assigned = 0usize;
    for i in 0..5 {
        widths[i] = (components[i] as u128 * len as u128 / total as u128) as usize;
        assigned += widths[i];
    }
    // Distribute rounding leftovers to the largest remainders.
    let mut order: Vec<usize> = (0..5).collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse(components[i] as u128 * len as u128 % total.max(1) as u128)
    });
    let mut leftover = len.saturating_sub(assigned);
    for &i in &order {
        if leftover == 0 {
            break;
        }
        if components[i] > 0 {
            widths[i] += 1;
            leftover -= 1;
        }
    }
    let mut out = String::with_capacity(len * 3);
    for i in 0..5 {
        for _ in 0..widths[i] {
            out.push(BAR_GLYPHS[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn take_switch_strips_all_occurrences() {
        let argv = |s: &[&str]| s.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (rest, on) = take_switch(argv(&["--quick", "5", "--quick"]), "--quick");
        assert!(on);
        assert_eq!(rest, vec!["5"]);
        let (rest, on) = take_switch(argv(&["5"]), "--quick");
        assert!(!on);
        assert_eq!(rest, vec!["5"]);
    }

    #[test]
    fn reject_unknown_args_accepts_empty() {
        reject_unknown_args(&[], "prog [--quick]");
    }

    #[test]
    fn take_count_parses_and_defaults() {
        let (rest, n) = take_count(vec!["7".into(), "x".into()], 100, "prog [iters]");
        assert_eq!((rest, n), (vec!["x".to_string()], 7));
        let (rest, n) = take_count(vec![], 100, "prog [iters]");
        assert!(rest.is_empty());
        assert_eq!(n, 100);
    }

    #[test]
    fn us_formatting() {
        assert_eq!(us(Some(55.0)), "55.0");
        assert_eq!(us(Some(154.3)), "154");
        assert_eq!(us(None), "-");
    }

    #[test]
    fn cnt_formatting() {
        assert_eq!(cnt(2.0), "2");
        assert_eq!(cnt(2.349), "2.3");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn stacked_bar_fills_exactly_len() {
        let bar = stacked_bar([10, 20, 5, 5, 10], 40);
        assert_eq!(bar.chars().count(), 40);
        let bar = stacked_bar([1, 1, 1, 1, 1], 7);
        assert_eq!(bar.chars().count(), 7);
    }

    #[test]
    fn stacked_bar_is_empty_for_zero() {
        assert_eq!(stacked_bar([0; 5], 40), "");
        assert_eq!(stacked_bar([1, 2, 3, 4, 5], 0), "");
    }

    #[test]
    fn stacked_bar_proportions_roughly_hold() {
        let bar = stacked_bar([50, 50, 0, 0, 0], 10);
        let cpu = bar.chars().filter(|&c| c == BAR_GLYPHS[0]).count();
        let net = bar.chars().filter(|&c| c == BAR_GLYPHS[1]).count();
        assert_eq!(cpu, 5);
        assert_eq!(net, 5);
    }

    #[test]
    fn legend_mentions_all_components() {
        let l = bar_legend();
        for name in ["cpu", "net", "thread mgmt", "thread sync", "runtime"] {
            assert!(l.contains(name));
        }
    }
}

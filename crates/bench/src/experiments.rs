//! Drivers for the application experiments (Figures 5 and 6, the
//! CC++/Nexus comparison, and the discussion-claims analysis). The binaries
//! are thin wrappers over these so that integration tests can assert the
//! paper's shapes directly.

use crate::fmt::JsonReport;
use crate::runner::{run_jobs, Unit};
use mpmd_apps::common::{AppBreakdown, Lang};
use mpmd_apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_apps::lu::{self, LuParams};
use mpmd_apps::water::{self, WaterParams, WaterVersion};
use mpmd_ccxx::CcxxConfig;
use mpmd_nexus::{nexus_config, nexus_sim_cost_model};
use mpmd_sim::{CostModel, FaultModel};

/// One measured cell of a breakdown figure.
#[derive(Clone, Debug)]
pub struct Cell {
    pub lang: Lang,
    pub label: String,
    pub breakdown: AppBreakdown,
    /// Work units for per-unit scaling (edges×steps, pairs×steps, 1 for LU).
    pub units: u64,
}

impl Cell {
    pub fn total_secs(&self) -> f64 {
        mpmd_sim::to_secs(self.breakdown.elapsed)
    }
}

/// The shared tail of every per-run report: elapsed time, the five cost
/// components keyed by [`mpmd_sim::Bucket::label`], and the raw counters.
fn breakdown_fields(b: &AppBreakdown) -> Vec<(&'static str, serde_json::Value)> {
    use serde::Serialize as _;
    let comps = b.components();
    let mut f = vec![
        ("elapsed_ns", b.elapsed.to_value()),
        (
            "components_ns",
            crate::fmt::bucket_object(|bk| comps[bk.index()].to_value()),
        ),
        ("counts", b.counts.to_value()),
    ];
    // Present only when the run had metrics on, so metrics-off reports are
    // byte-identical to pre-registry output.
    if let Some(m) = &b.metrics {
        f.push(("metrics", m.to_value()));
    }
    f
}

impl JsonReport for Cell {
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)> {
        use serde::Serialize as _;
        let mut f = vec![
            ("lang", self.lang.label().to_value()),
            ("label", self.label.to_value()),
            ("units", self.units.to_value()),
        ];
        f.extend(breakdown_fields(&self.breakdown));
        f
    }
}

/// Scale of an experiment run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes (800-node EM3D graph, 64/512 molecules, 512² LU).
    Paper,
    /// Reduced sizes for smoke tests and CI.
    Quick,
}

impl Scale {
    /// Split the `--quick` switch off a raw argument list. Binaries pass the
    /// remaining arguments through their other flag parsers and then reject
    /// leftovers via [`crate::fmt::reject_unknown_args`].
    pub fn take(args: Vec<String>) -> (Vec<String>, Scale) {
        let (rest, quick) = crate::fmt::take_switch(args, "--quick");
        (rest, if quick { Scale::Quick } else { Scale::Paper })
    }
}

fn em3d_params(scale: Scale, remote_frac: f64) -> Em3dParams {
    match scale {
        Scale::Paper => Em3dParams::paper(remote_frac),
        Scale::Quick => Em3dParams {
            graph_nodes: 160,
            degree: 8,
            procs: 4,
            steps: 2,
            remote_frac,
            seed: 42,
        },
    }
}

/// Figure 5: EM3D per-edge breakdowns for each version × remote fraction ×
/// language, Split-C and CC++/ThAM. Each (version, fraction, language)
/// simulation is an independent work unit fanned across `jobs` threads; the
/// result order is fixed by the config list, so output is identical for any
/// `jobs`.
pub fn run_fig5(scale: Scale, fracs: &[f64], jobs: usize) -> Vec<(Em3dVersion, f64, Cell, Cell)> {
    let mut configs = Vec::new();
    for &v in &Em3dVersion::ALL {
        for &f in fracs {
            configs.push((v, f));
        }
    }
    let units: Vec<Unit<Cell>> = configs
        .iter()
        .flat_map(|&(v, f)| {
            let p = em3d_params(scale, f);
            let units = (Graphish::edges(&p) * p.steps) as u64;
            let p2 = p.clone();
            [
                Box::new(move || Cell {
                    lang: Lang::SplitC,
                    label: v.label().to_string(),
                    breakdown: em3d::run_splitc(&p, v).breakdown,
                    units,
                }) as Unit<Cell>,
                Box::new(move || Cell {
                    lang: Lang::Ccxx,
                    label: v.label().to_string(),
                    breakdown: em3d::run_ccxx(&p2, v, CcxxConfig::tham(), CostModel::default())
                        .breakdown,
                    units,
                }) as Unit<Cell>,
            ]
        })
        .collect();
    let mut cells = run_jobs(units, jobs).into_iter();
    configs
        .into_iter()
        .map(|(v, f)| {
            let sc = cells.next().expect("missing split-c cell");
            let cc = cells.next().expect("missing cc++ cell");
            (v, f, sc, cc)
        })
        .collect()
}

/// Helper: edge count of an EM3D parameter set without building the graph.
struct Graphish;
impl Graphish {
    fn edges(p: &Em3dParams) -> usize {
        (p.graph_nodes / 2) * p.degree
    }
}

fn water_params(scale: Scale, n: usize) -> WaterParams {
    match scale {
        Scale::Paper => WaterParams::paper(n),
        Scale::Quick => WaterParams {
            n_mol: n.min(32),
            procs: 4,
            steps: 1,
            seed: 1997,
            box_size: 8.0,
        },
    }
}

fn lu_params(scale: Scale) -> LuParams {
    match scale {
        Scale::Paper => LuParams::paper(),
        Scale::Quick => LuParams {
            n: 64,
            block: 8,
            procs: 4,
            seed: 101,
        },
    }
}

/// Figure 6, Water half: (version, molecules, Split-C, CC++) cells, fanned
/// across `jobs` threads in deterministic config order.
pub fn run_fig6_water(
    scale: Scale,
    sizes: &[usize],
    jobs: usize,
) -> Vec<(WaterVersion, usize, Cell, Cell)> {
    let mut configs = Vec::new();
    for &v in &WaterVersion::ALL {
        for &n in sizes {
            configs.push((v, n));
        }
    }
    let units: Vec<Unit<Cell>> = configs
        .iter()
        .flat_map(|&(v, n)| {
            let p = water_params(scale, n);
            let units = (p.n_mol * (p.n_mol - 1) / 2 * p.steps) as u64;
            let p2 = p.clone();
            [
                Box::new(move || Cell {
                    lang: Lang::SplitC,
                    label: v.label().to_string(),
                    breakdown: water::run_splitc(&p, v).breakdown,
                    units,
                }) as Unit<Cell>,
                Box::new(move || Cell {
                    lang: Lang::Ccxx,
                    label: v.label().to_string(),
                    breakdown: water::run_ccxx(&p2, v, CcxxConfig::tham(), CostModel::default())
                        .breakdown,
                    units,
                }) as Unit<Cell>,
            ]
        })
        .collect();
    let mut cells = run_jobs(units, jobs).into_iter();
    configs
        .into_iter()
        .map(|(v, n)| {
            let sc = cells.next().expect("missing split-c cell");
            let cc = cells.next().expect("missing cc++ cell");
            (v, n, sc, cc)
        })
        .collect()
}

/// Figure 6, LU half. The two language runs execute concurrently when
/// `jobs > 1`.
pub fn run_fig6_lu(scale: Scale, jobs: usize) -> (Cell, Cell) {
    let p = lu_params(scale);
    let p2 = p.clone();
    let units: Vec<Unit<Cell>> = vec![
        Box::new(move || Cell {
            lang: Lang::SplitC,
            label: "sc-lu".to_string(),
            breakdown: lu::run_splitc(&p).breakdown,
            units: 1,
        }),
        Box::new(move || Cell {
            lang: Lang::Ccxx,
            label: "cc-lu".to_string(),
            breakdown: lu::run_ccxx(&p2, CcxxConfig::tham(), CostModel::default()).breakdown,
            units: 1,
        }),
    ];
    let mut cells = run_jobs(units, jobs).into_iter();
    let sc = cells.next().expect("missing split-c cell");
    let cc = cells.next().expect("missing cc++ cell");
    (sc, cc)
}

/// The profiling/regression suite: every application kernel at one
/// representative configuration (EM3D's three versions at remote fraction
/// 1.0, Water's versions at the scale's molecule count, and LU), Split-C and
/// CC++/ThAM, run under an explicit cost model. `msgprofile` and `regress`
/// pass `CostModel::default().with_metrics()` so every cell carries its
/// latency histograms and src→dst traffic matrix; the config order (and
/// therefore the output) is fixed for any `jobs`.
pub fn run_profile_suite(scale: Scale, cost: CostModel, jobs: usize) -> Vec<Cell> {
    let mut units: Vec<Unit<Cell>> = Vec::new();
    for &v in &Em3dVersion::ALL {
        let p = em3d_params(scale, 1.0);
        let n_units = (Graphish::edges(&p) * p.steps) as u64;
        let (p2, c1, c2) = (p.clone(), cost.clone(), cost.clone());
        units.push(Box::new(move || Cell {
            lang: Lang::SplitC,
            label: v.label().to_string(),
            breakdown: em3d::run_splitc_cost(&p, v, c1).breakdown,
            units: n_units,
        }));
        units.push(Box::new(move || Cell {
            lang: Lang::Ccxx,
            label: v.label().to_string(),
            breakdown: em3d::run_ccxx(&p2, v, CcxxConfig::tham(), c2).breakdown,
            units: n_units,
        }));
    }
    let wsize = if scale == Scale::Paper { 64 } else { 16 };
    for &v in &WaterVersion::ALL {
        let p = water_params(scale, wsize);
        let n_units = (p.n_mol * (p.n_mol - 1) / 2 * p.steps) as u64;
        let (p2, c1, c2) = (p.clone(), cost.clone(), cost.clone());
        units.push(Box::new(move || Cell {
            lang: Lang::SplitC,
            label: v.label().to_string(),
            breakdown: water::run_splitc_cost(&p, v, c1).breakdown,
            units: n_units,
        }));
        units.push(Box::new(move || Cell {
            lang: Lang::Ccxx,
            label: v.label().to_string(),
            breakdown: water::run_ccxx(&p2, v, CcxxConfig::tham(), c2).breakdown,
            units: n_units,
        }));
    }
    let p = lu_params(scale);
    let (p2, c1, c2) = (p.clone(), cost.clone(), cost);
    units.push(Box::new(move || Cell {
        lang: Lang::SplitC,
        label: "sc-lu".to_string(),
        breakdown: lu::run_splitc_cost(&p, c1).breakdown,
        units: 1,
    }));
    units.push(Box::new(move || Cell {
        lang: Lang::Ccxx,
        label: "cc-lu".to_string(),
        breakdown: lu::run_ccxx(&p2, CcxxConfig::tham(), c2).breakdown,
        units: 1,
    }));
    run_jobs(units, jobs)
}

/// CC++/Nexus vs CC++/ThAM ratios per application (the paper's §6
/// "Comparison with CC++/Nexus": 5-6× compute-bound, 10-35× comm-bound).
pub struct NexusComparison {
    pub name: String,
    pub tham_secs: f64,
    pub nexus_secs: f64,
}

impl NexusComparison {
    pub fn ratio(&self) -> f64 {
        self.nexus_secs / self.tham_secs
    }
}

impl JsonReport for NexusComparison {
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)> {
        use serde::Serialize as _;
        vec![
            ("application", self.name.to_value()),
            ("tham_secs", self.tham_secs.to_value()),
            ("nexus_secs", self.nexus_secs.to_value()),
            ("speedup", self.ratio().to_value()),
        ]
    }
}

/// Run every application under ThAM and under the Nexus baseline. Each
/// (application, runtime) pair is an independent work unit; results are
/// reassembled in the fixed application order.
pub fn run_nexus_cmp(scale: Scale, jobs: usize) -> Vec<NexusComparison> {
    let mut names = Vec::new();
    let mut units: Vec<Unit<u64>> = Vec::new();

    for v in Em3dVersion::ALL {
        let p = em3d_params(scale, 1.0);
        names.push(format!("{} (100% remote)", v.label()));
        let p2 = p.clone();
        units.push(Box::new(move || {
            em3d::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default())
                .breakdown
                .elapsed
        }));
        units.push(Box::new(move || {
            em3d::run_ccxx(&p2, v, nexus_config(), nexus_sim_cost_model())
                .breakdown
                .elapsed
        }));
    }

    let wsize = if scale == Scale::Paper { 64 } else { 16 };
    for v in WaterVersion::ALL {
        let p = water_params(scale, wsize);
        names.push(format!("{} ({} molecules)", v.label(), p.n_mol));
        let p2 = p.clone();
        units.push(Box::new(move || {
            water::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default())
                .breakdown
                .elapsed
        }));
        units.push(Box::new(move || {
            water::run_ccxx(&p2, v, nexus_config(), nexus_sim_cost_model())
                .breakdown
                .elapsed
        }));
    }

    let p = lu_params(scale);
    names.push(format!("cc-lu ({}x{})", p.n, p.n));
    let p2 = p.clone();
    units.push(Box::new(move || {
        lu::run_ccxx(&p, CcxxConfig::tham(), CostModel::default())
            .breakdown
            .elapsed
    }));
    units.push(Box::new(move || {
        lu::run_ccxx(&p2, nexus_config(), nexus_sim_cost_model())
            .breakdown
            .elapsed
    }));

    let mut elapsed = run_jobs(units, jobs).into_iter();
    names
        .into_iter()
        .map(|name| {
            let tham = elapsed.next().expect("missing tham run");
            let nex = elapsed.next().expect("missing nexus run");
            NexusComparison {
                name,
                tham_secs: mpmd_sim::to_secs(tham),
                nexus_secs: mpmd_sim::to_secs(nex),
            }
        })
        .collect()
}

/// Applications exercised by the fault-injection sweep (`faults` binary).
/// One communication-heavy version of each paper application.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultApp {
    /// EM3D, ghost version (split-phase gets each half-step).
    Em3d,
    /// Water, atomic version (remote reads + atomic force accumulation).
    Water,
    /// Blocked LU (bulk stores, prefetches, and barriers).
    Lu,
}

impl FaultApp {
    pub const ALL: [FaultApp; 3] = [FaultApp::Em3d, FaultApp::Water, FaultApp::Lu];

    pub fn label(self) -> &'static str {
        match self {
            FaultApp::Em3d => "em3d-ghost",
            FaultApp::Water => "water-atomic",
            FaultApp::Lu => "lu",
        }
    }
}

/// One cell of the fault sweep: application × runtime × fault level.
pub struct FaultCell {
    pub app: &'static str,
    pub lang: Lang,
    /// Drop rate of the wire fault model, or `None` for the baseline run
    /// with the fault model off (unsequenced fast path, no reliability
    /// protocol).
    pub drop: Option<f64>,
    pub breakdown: AppBreakdown,
    /// Whether the application results are bitwise identical to the
    /// fault-free baseline of the same (application, runtime) pair. The
    /// reliable-delivery layer guarantees this; the sweep verifies it.
    pub matches_baseline: bool,
}

/// JSON form for `faults --json`. Deliberately contains no application
/// floating-point values — only virtual times, counters, the drop rate,
/// and the baseline-match verdict — so same-seed runs are byte-identical.
impl JsonReport for FaultCell {
    fn json_fields(&self) -> Vec<(&'static str, serde_json::Value)> {
        use serde::Serialize as _;
        let mut f = vec![
            ("app", self.app.to_value()),
            ("lang", self.lang.label().to_value()),
            (
                "drop_rate",
                match self.drop {
                    Some(d) => d.to_value(),
                    None => serde_json::Value::Null,
                },
            ),
            ("matches_baseline", self.matches_baseline.to_value()),
        ];
        f.extend(breakdown_fields(&self.breakdown));
        f
    }
}

/// The fault model used by the sweep at a given drop rate: duplicates at
/// half the drop rate and reordering at the drop rate, so every fault class
/// is exercised together.
pub fn sweep_faults(seed: u64, drop: f64) -> FaultModel {
    FaultModel::uniform(seed, drop, drop / 2.0, drop)
}

/// FNV-1a over the bit patterns of the result values: certifies "bitwise
/// identical to baseline" without holding every output vector.
fn result_fingerprint(chunks: &[&[f64]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for v in *chunk {
            for b in v.to_bits().to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Run one (application, runtime) pair under `cost`, returning the
/// breakdown and a fingerprint of the application results.
fn fault_unit(app: FaultApp, lang: Lang, scale: Scale, cost: CostModel) -> (AppBreakdown, u64) {
    match (app, lang) {
        (FaultApp::Em3d, Lang::SplitC) => {
            let p = em3d_params(scale, 1.0);
            let r = em3d::run_splitc_cost(&p, Em3dVersion::Ghost, cost);
            let fp = result_fingerprint(&[&r.output.e, &r.output.h]);
            (r.breakdown, fp)
        }
        (FaultApp::Em3d, Lang::Ccxx) => {
            let p = em3d_params(scale, 1.0);
            let r = em3d::run_ccxx(&p, Em3dVersion::Ghost, CcxxConfig::tham(), cost);
            let fp = result_fingerprint(&[&r.output.e, &r.output.h]);
            (r.breakdown, fp)
        }
        (FaultApp::Water, Lang::SplitC) => {
            let p = water_params(scale, if scale == Scale::Paper { 64 } else { 16 });
            let r = water::run_splitc_cost(&p, WaterVersion::Atomic, cost);
            let fp = result_fingerprint(&[&r.output.pos, &[r.output.energy]]);
            (r.breakdown, fp)
        }
        (FaultApp::Water, Lang::Ccxx) => {
            let p = water_params(scale, if scale == Scale::Paper { 64 } else { 16 });
            let r = water::run_ccxx(&p, WaterVersion::Atomic, CcxxConfig::tham(), cost);
            let fp = result_fingerprint(&[&r.output.pos, &[r.output.energy]]);
            (r.breakdown, fp)
        }
        (FaultApp::Lu, Lang::SplitC) => {
            let p = lu_params(scale);
            let r = lu::run_splitc_cost(&p, cost);
            let fp = result_fingerprint(&[&r.output.factored]);
            (r.breakdown, fp)
        }
        (FaultApp::Lu, Lang::Ccxx) => {
            let p = lu_params(scale);
            let r = lu::run_ccxx(&p, CcxxConfig::tham(), cost);
            let fp = result_fingerprint(&[&r.output.factored]);
            (r.breakdown, fp)
        }
    }
}

/// Fault-injection sweep: every application × runtime × fault level, with
/// the baseline (fault model off) first in each group. Each simulation is an
/// independent work unit fanned across `jobs` threads in deterministic
/// config order, so output is identical for any `jobs`.
pub fn run_faults(scale: Scale, drops: &[f64], seed: u64, jobs: usize) -> Vec<FaultCell> {
    let mut configs = Vec::new();
    for &app in &FaultApp::ALL {
        for lang in [Lang::SplitC, Lang::Ccxx] {
            configs.push((app, lang));
        }
    }
    let levels: Vec<Option<f64>> = std::iter::once(None)
        .chain(drops.iter().copied().map(Some))
        .collect();
    let units: Vec<Unit<(AppBreakdown, u64)>> = configs
        .iter()
        .flat_map(|&(app, lang)| {
            levels.iter().map(move |&level| {
                let cost = match level {
                    None => CostModel::default(),
                    Some(d) => CostModel::default().with_faults(sweep_faults(seed, d)),
                };
                Box::new(move || fault_unit(app, lang, scale, cost)) as Unit<(AppBreakdown, u64)>
            })
        })
        .collect();
    let mut results = run_jobs(units, jobs).into_iter();
    let mut out = Vec::new();
    for (app, lang) in configs {
        let (breakdown, base_fp) = results.next().expect("missing baseline run");
        out.push(FaultCell {
            app: app.label(),
            lang,
            drop: None,
            breakdown,
            matches_baseline: true,
        });
        for &d in drops {
            let (breakdown, fp) = results.next().expect("missing fault run");
            out.push(FaultCell {
                app: app.label(),
                lang,
                drop: Some(d),
                breakdown,
                matches_baseline: fp == base_fp,
            });
        }
    }
    out
}

/// Render one breakdown cell as a table row (seconds + component shares).
pub fn breakdown_row(name: &str, cell: &Cell, normal: f64) -> Vec<String> {
    let b = &cell.breakdown;
    let parts = b.components();
    let busy = b.busy_total().max(1) as f64;
    vec![
        name.to_string(),
        crate::fmt::secs(cell.total_secs()),
        format!("{:.2}", mpmd_sim::to_secs(b.elapsed) / normal),
        format!("{:.0}%", parts[0] as f64 / busy * 100.0),
        format!("{:.0}%", parts[1] as f64 / busy * 100.0),
        format!("{:.0}%", parts[2] as f64 / busy * 100.0),
        format!("{:.0}%", parts[3] as f64 / busy * 100.0),
        format!("{:.0}%", parts[4] as f64 / busy * 100.0),
    ]
}

/// Column headers matching [`breakdown_row`].
pub const BREAKDOWN_HEADERS: [&str; 8] = [
    "run", "secs", "vs sc", "cpu", "net", "mgmt", "sync", "runtime",
];

/// Render a Split-C/CC++ pair as the paper's normalized stacked bars: the
/// Split-C bar is `base_len` characters; the CC++ bar is scaled by the
/// ratio of their elapsed times.
pub fn bar_pair(name: &str, sc: &Cell, cc: &Cell, base_len: usize) -> String {
    let ratio = cc.breakdown.elapsed as f64 / sc.breakdown.elapsed.max(1) as f64;
    let cc_len = ((base_len as f64) * ratio).round() as usize;
    let comp = |c: &Cell| {
        let p = c.breakdown.components();
        [p[0], p[1], p[2], p[3], p[4]]
    };
    format!(
        "{:>26} |{}\n{:>26} |{}  ({ratio:.2}x)",
        format!("split-c {name}"),
        crate::fmt::stacked_bar(comp(sc), base_len),
        format!("cc++ {name}"),
        crate::fmt::stacked_bar(comp(cc), cc_len),
    )
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::micro::{Measured, Table4Row};

    fn golden_breakdown() -> AppBreakdown {
        let counts = mpmd_sim::Stats {
            bucket_ns: [11_111, 22_222, 3_333, 444, 55],
            msgs_sent: 100,
            msgs_received: 100,
            bytes_sent: 4_800,
            short_msgs: 80,
            bulk_msgs: 20,
            polls: 40,
            handlers_run: 90,
            ..Default::default()
        };
        AppBreakdown {
            elapsed: 123_456_789,
            cpu: 11_111,
            net: 22_222,
            thread_mgmt: 3_333,
            thread_sync: 444,
            runtime: 55,
            counts,
            metrics: None,
        }
    }

    fn golden_measured() -> Measured {
        Measured {
            total_us: 67.5,
            am_us: 55.0,
            threads_us: 4.25,
            yields: 2.0,
            creates: 1.0,
            syncs: 3.0,
            runtime_us: 8.25,
            bucket_us: [1.5, 55.0, 2.0, 2.25, 8.25],
        }
    }

    fn golden_value() -> serde_json::Value {
        let cell = Cell {
            lang: Lang::SplitC,
            label: "ghost".to_string(),
            breakdown: golden_breakdown(),
            units: 2_560,
        };
        let fault_cell = FaultCell {
            app: "em3d-ghost",
            lang: Lang::Ccxx,
            drop: Some(0.1),
            breakdown: golden_breakdown(),
            matches_baseline: true,
        };
        let row = Table4Row {
            name: "0-Word",
            cc: golden_measured(),
            sc: Some(golden_measured()),
            paper_cc: (77.0, 55.0, 12.0, 10.0),
            paper_sc: Some((56.0, 53.0, 3.0)),
        };
        let mut m = serde_json::Map::new();
        m.insert("cell".to_string(), cell.to_json());
        m.insert("fault_cell".to_string(), fault_cell.to_json());
        m.insert("measured".to_string(), golden_measured().to_json());
        m.insert("table4_row".to_string(), row.to_json());
        serde_json::Value::Object(m)
    }

    /// The `--json` serializers must produce byte-identical output across
    /// refactors. The golden file was captured from the hand-rolled
    /// per-type `to_json` implementations; regenerate (only for a
    /// deliberate format change) with `UPDATE_GOLDEN=1 cargo test`.
    #[test]
    fn json_reports_match_golden() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/testdata/json_report_golden.json"
        );
        let mut text = serde_json::to_string_pretty(&golden_value()).expect("serialize golden");
        text.push('\n');
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata")).unwrap();
            std::fs::write(path, &text).unwrap();
        }
        let want = std::fs::read_to_string(path)
            .expect("golden file missing; regenerate with UPDATE_GOLDEN=1 cargo test");
        assert_eq!(
            text, want,
            "JSON report serialization drifted from the golden file"
        );
    }
}

//! # mpmd-bench — experiment harness
//!
//! Library support for the table/figure binaries (`table1`, `table4`,
//! `fig5`, `fig6`, `nexus_cmp`, `claims`, `ablation`) and the Criterion
//! benches. The micro-benchmark implementations live in [`micro`]; shared
//! text-table formatting in [`fmt`]; the parallel experiment runner (the
//! `-j` flag) in [`runner`].

pub mod experiments;
pub mod explore;
pub mod fmt;
pub mod micro;
pub mod regress;
pub mod runner;

#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting, and a smoke run of
# the machine-readable benchmark output.
set -euo pipefail
cd "$(dirname "$0")"

# Wall-clock gates (fastpath throughput, metrics overhead) measure real
# time and can flake when the CI machine is briefly loaded. Run such a
# gate a second time before declaring failure; each attempt prints its
# measured values, so a genuine regression shows two failing measurements.
retry_once() {
    local what="$1"; shift
    if "$@"; then return 0; fi
    echo "$what failed; retrying once (wall-clock gates can flake under load)"
    "$@"
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> table4 --json smoke test"
cargo run --release -p mpmd-bench --bin table4 -- 50 --json results/table4.json >/dev/null
python3 - <<'EOF' 2>/dev/null || node -e "JSON.parse(require('fs').readFileSync('results/table4.json'))" 2>/dev/null || \
    grep -q '"bucket_us"' results/table4.json
import json
d = json.load(open("results/table4.json"))
assert d["table"] == "table4" and d["rows"], "table4.json missing rows"
assert "bucket_us" in d["rows"][0]["cc"], "per-bucket totals missing"
EOF
echo "results/table4.json OK"

echo "==> fig5 parallel-runner determinism smoke"
# The parallel experiment runner must produce byte-identical output for any
# worker count; diff a -j $(nproc) run against -j 1 (quick scale).
cargo build --release -p mpmd-bench
./target/release/fig5 --quick -j 1 --json /tmp/ci_fig5_j1.json >/tmp/ci_fig5_j1.out
./target/release/fig5 --quick -j "$(nproc)" --json /tmp/ci_fig5_jn.json >/tmp/ci_fig5_jn.out
cmp /tmp/ci_fig5_j1.json /tmp/ci_fig5_jn.json
cmp /tmp/ci_fig5_j1.out /tmp/ci_fig5_jn.out
rm -f /tmp/ci_fig5_j1.json /tmp/ci_fig5_jn.json /tmp/ci_fig5_j1.out /tmp/ci_fig5_jn.out
echo "fig5 -j1 vs -j$(nproc) identical"

echo "==> sim-path byte-identity gate (repeat runs of the deterministic benches)"
# The Fabric refactor must keep the simulator path bit-exact: every
# deterministic bench emits byte-identical JSON on a repeat run. (fig5 is
# covered by the -j cmp above; faults cmps its own pair below; regress is
# excluded because its report embeds wall-clock fields.)
./target/release/table4 50 --json /tmp/ci_ident_a.json >/dev/null
./target/release/table4 50 --json /tmp/ci_ident_b.json >/dev/null
cmp /tmp/ci_ident_a.json /tmp/ci_ident_b.json
./target/release/msgprofile --quick -j 1 --json /tmp/ci_ident_a.json >/dev/null
./target/release/msgprofile --quick -j 1 --json /tmp/ci_ident_b.json >/dev/null
cmp /tmp/ci_ident_a.json /tmp/ci_ident_b.json
./target/release/ablation 25 --coalescing --json /tmp/ci_ident_a.json >/dev/null
./target/release/ablation 25 --coalescing --json /tmp/ci_ident_b.json >/dev/null
cmp /tmp/ci_ident_a.json /tmp/ci_ident_b.json
rm -f /tmp/ci_ident_a.json /tmp/ci_ident_b.json
echo "table4 / msgprofile / ablation byte-identical across runs"

echo "==> LocalFabric smoke (wall-clock backend: null-RMI + barrier ring)"
# Real-hardware mode: null-RMI and a 4-thread barrier ring on OS threads
# over the sharded rings. The binary asserts completion (no lost round
# trips or barrier rounds) and nonzero wall-clock histograms, and checks
# em3d ghost fields bit-match a simulator run of the same parameters.
./target/release/local --rmi-iters 500 --barriers 200 --json /tmp/ci_local.json
python3 - <<'EOF' 2>/dev/null || node -e "
  const d = JSON.parse(require('fs').readFileSync('/tmp/ci_local.json'));
  if (d.null_rmi.rtt_wall.count !== 500) throw new Error('lost null-RMI round trips');
  if (!(d.null_rmi.rtt_wall.p50_ns > 0)) throw new Error('empty wall RTT histogram');
  if (d.barrier_ring.latency_wall.count !== 200) throw new Error('lost barrier rounds');
  if (!(d.barrier_ring.latency_wall.p50_ns > 0)) throw new Error('empty barrier histogram');
  if (!d.em3d_ghost.matches_sim) throw new Error('em3d diverged between fabrics');
" 2>/dev/null || grep -q '"matches_sim": true' /tmp/ci_local.json
import json
d = json.load(open("/tmp/ci_local.json"))
assert d["table"] == "local"
assert d["null_rmi"]["rtt_wall"]["count"] == 500, "lost null-RMI round trips"
assert d["null_rmi"]["rtt_wall"]["p50_ns"] > 0, "empty wall-clock RTT histogram"
assert d["barrier_ring"]["latency_wall"]["count"] == 200, "lost barrier rounds"
assert d["barrier_ring"]["latency_wall"]["p50_ns"] > 0, "empty barrier histogram"
assert d["em3d_ghost"]["matches_sim"], "em3d diverged between fabrics"
EOF
rm -f /tmp/ci_local.json
echo "LocalFabric smoke OK"

echo "==> faults smoke test (reliable delivery under a lossy wire)"
# Nonzero fault rates must leave application results bitwise identical to
# the fault-free baseline (the binary exits nonzero on divergence), produce
# parseable JSON with reliability activity, and be seed-deterministic:
# two same-seed runs emit byte-identical JSON.
./target/release/faults --quick --json /tmp/ci_faults_a.json >/tmp/ci_faults_a.out
./target/release/faults --quick --json /tmp/ci_faults_b.json >/tmp/ci_faults_b.out
cmp /tmp/ci_faults_a.json /tmp/ci_faults_b.json
cmp /tmp/ci_faults_a.out /tmp/ci_faults_b.out
python3 - <<'EOF' 2>/dev/null || node -e "
  const d = JSON.parse(require('fs').readFileSync('/tmp/ci_faults_a.json'));
  if (!d.all_match) throw new Error('faulty run diverged from baseline');
  const retx = d.cells.reduce((a, c) => a + (c.counts.retransmits || 0), 0);
  if (!(retx > 0)) throw new Error('no retransmissions under faults');
" 2>/dev/null || grep -q '"all_match": true' /tmp/ci_faults_a.json
import json
d = json.load(open("/tmp/ci_faults_a.json"))
assert d["table"] == "faults" and d["cells"], "faults.json missing cells"
assert d["all_match"], "faulty run diverged from the fault-free baseline"
retx = sum(c["counts"].get("retransmits", 0) for c in d["cells"])
assert retx > 0, "no retransmissions under nonzero drop rates"
EOF
rm -f /tmp/ci_faults_a.json /tmp/ci_faults_b.json /tmp/ci_faults_a.out /tmp/ci_faults_b.out
echo "faults smoke + seeded determinism OK"

echo "==> ablation coalescing smoke (em3d on/off)"
# The coalescing axis self-verifies: the binary asserts (and exits nonzero
# otherwise) that with aggregation on, em3d results are bit-identical in
# both runtimes, the wire carries strictly fewer messages (>= 25% fewer
# under Split-C), and net time decreases. Check the JSON agrees.
./target/release/ablation 25 --coalescing --json /tmp/ci_ablation_co.json >/dev/null
python3 - <<'EOF' 2>/dev/null || node -e "
  const d = JSON.parse(require('fs').readFileSync('/tmp/ci_ablation_co.json'));
  for (const lang of ['splitc-ghost', 'ccxx-ghost']) {
    const c = d.em3d_coalescing[lang];
    if (!(c.on.msgs_sent < c.off.msgs_sent)) throw new Error(lang + ': no message reduction');
    if (!(c.on.net_ns < c.off.net_ns)) throw new Error(lang + ': no net reduction');
  }
" 2>/dev/null || grep -q '"em3d_coalescing"' /tmp/ci_ablation_co.json
import json
d = json.load(open("/tmp/ci_ablation_co.json"))
for lang in ("splitc-ghost", "ccxx-ghost"):
    c = d["em3d_coalescing"][lang]
    assert c["on"]["msgs_sent"] < c["off"]["msgs_sent"], f"{lang}: no message reduction"
    assert c["on"]["net_ns"] < c["off"]["net_ns"], f"{lang}: no net reduction"
assert d["em3d_coalescing"]["splitc-ghost"]["msgs_drop_pct"] >= 25.0
EOF
rm -f /tmp/ci_ablation_co.json
echo "ablation coalescing smoke OK"

echo "==> regress smoke (quick observability suite vs checked-in baseline)"
# The perf-regression gate itself: rerun the quick-scale suite with metrics
# on and diff every gated metric against the committed baseline (loose
# per-metric tolerances; the binary exits nonzero on regression).
./target/release/regress --quick --json /tmp/ci_regress.json >/dev/null
python3 - <<'EOF' 2>/dev/null || node -e "
  const d = JSON.parse(require('fs').readFileSync('/tmp/ci_regress.json'));
  if (!(d.null_rmi.rtt_ns.p50 > 0)) throw new Error('empty null-RMI histogram');
" 2>/dev/null || grep -q '"p50"' /tmp/ci_regress.json
import json
d = json.load(open("/tmp/ci_regress.json"))
assert d["table"] == "regress" and d["schema_version"] >= 2
assert d["null_rmi"]["rtt_ns"]["p50"] > 0, "empty null-RMI histogram"
assert d["experiments"], "no experiment cells"
assert all("hists" in e for e in d["experiments"].values())
EOF
rm -f /tmp/ci_regress.json
echo "regress quick gate OK"

echo "==> fastpath wall-clock gate (null-RMI throughput + quick fig5)"
# Short-message fast path: null-RMI throughput (best of three wall-clock
# reps) must stay within 10% of the committed results/BENCH_fastpath.json,
# and the deterministic virtual RTT must match it exactly. The run refreshes
# the results file in place; git diff shows the new numbers.
retry_once "fastpath gate" ./target/release/regress --fastpath
echo "fastpath gate OK"

echo "==> local wall-clock gate (LocalFabric null-RMI vs committed baseline)"
# The LocalFabric hot path on real OS threads: null-RMI throughput (best of
# three reps) must stay within 50% of the committed results/BENCH_local.json
# (wall-clock on a virtualized host drifts ~2x between windows; the sharp
# edge is the latency check), and the measured p50/p99 RTT may climb at most
# one log2 histogram bucket above it. The run refreshes the file in place.
retry_once "local gate" ./target/release/regress --local
echo "local gate OK"

echo "==> fabric ring stress + wall-clock zero-alloc tests"
# The lock-free ring's FIFO/wraparound/overflow invariants under thread
# contention, and the zero-allocation guarantee of the wall-clock short-send
# path (counting global allocator), in release mode where the fast paths are
# actually taken.
cargo test --release -q -p mpmd-fabric --test ring_stress --test alloc_count
echo "fabric stress + alloc tests OK"

echo "==> zero-allocation fast-path proof"
# A counting global allocator brackets 1000 short-message round trips (must
# be exactly 0 heap allocations) and 1000 AM bulk sends (bounded); the bench
# aborts on regression.
cargo bench -p mpmd-bench --bench alloc_count 2>/dev/null | grep '^alloc_count/'
echo "alloc_count bounds OK"

echo "==> clippy: no boxed returns on the fast path"
# The zero-alloc path must not regrow Box-returning APIs in the touched
# crates (sim, am, ccxx/splitc, bench).
cargo clippy -p mpmd-sim -p mpmd-am -p mpmd-ccxx -p mpmd-splitc -p mpmd-bench \
    --all-targets -- -D warnings -D clippy::unnecessary_box_returns
echo "unnecessary_box_returns clean"

echo "==> metrics no-registry overhead assertion"
# The registry must be zero-cost when absent: 10k disabled metric_observe
# calls may add at most 150 ns each over the no-hooks baseline run. The
# awk gate always prints the measured per-op cost, so a failing attempt
# (and its retry) leaves the numbers in the log.
metrics_gate() {
    cargo bench -p mpmd-bench --bench metrics_overhead | tee /tmp/ci_metrics_bench.out
    awk '
      /bench metrics\/no_hooks_baseline:/ { base = $3 }
      /bench metrics\/observe_disabled_x10k:/ { dis = $3 }
      END {
        if (base == "" || dis == "") { print "missing bench lines"; exit 1 }
        per = (dis - base) / 10000
        printf "disabled hook: %.0f ns/op (budget 150)\n", per
        exit (per < 150) ? 0 : 1
      }' /tmp/ci_metrics_bench.out
}
retry_once "metrics overhead gate" metrics_gate
rm -f /tmp/ci_metrics_bench.out
echo "metrics gating overhead OK"

echo "==> schedule exploration sweep (mini model checker)"
# Seed-sampled perturbations of every engine don't-care point (node ties,
# event ties, forced slow paths) across the workload configs must uphold
# the any-schedule invariants: byte-identical fault-free reports, checksum
# identity under faults, zero short-path allocations, replay fidelity.
# The binary exits nonzero on any violation and prints the shrunk trace;
# --quick covers 500+ perturbations and must finish inside a minute.
timeout 60 ./target/release/explore --quick --json /tmp/ci_explore.json
python3 - <<'EOF' 2>/dev/null || node -e "
  const d = JSON.parse(require('fs').readFileSync('/tmp/ci_explore.json'));
  if (!(d.perturbations >= 500)) throw new Error('fewer than 500 perturbations');
  if (!(d.configs >= 3)) throw new Error('fewer than 3 configurations');
  if (d.violations.length) throw new Error('invariant violations reported');
" 2>/dev/null || grep -q '"violations": \[\]' /tmp/ci_explore.json
import json
d = json.load(open("/tmp/ci_explore.json"))
assert d["table"] == "explore"
assert d["perturbations"] >= 500, "fewer than 500 schedule perturbations"
assert d["configs"] >= 3, "fewer than 3 configurations"
assert d["violations"] == [], f"violations: {d['violations']}"
EOF
rm -f /tmp/ci_explore.json
echo "explore sweep OK"

echo "==> threads-fallback build (fiber backend force-disabled)"
# --cfg mpmd_no_fibers compiles out the fiber backend the way a
# non-x86_64 target would; the engine must still build everywhere and the
# exploration tests must pass with Auto resolving to the threads backend
# (their assertions compare against threads baselines, so passing proves
# identical output). A separate target dir keeps the main cache warm.
CARGO_TARGET_DIR=target/no_fibers RUSTFLAGS="--cfg mpmd_no_fibers" \
    cargo test -q -p mpmd-sim --test explore
echo "threads fallback OK"

echo "==> all checks passed"

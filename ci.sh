#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting, and a smoke run of
# the machine-readable benchmark output.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> table4 --json smoke test"
cargo run --release -p mpmd-bench --bin table4 -- 50 --json results/table4.json >/dev/null
python3 - <<'EOF' 2>/dev/null || node -e "JSON.parse(require('fs').readFileSync('results/table4.json'))" 2>/dev/null || \
    grep -q '"bucket_us"' results/table4.json
import json
d = json.load(open("results/table4.json"))
assert d["table"] == "table4" and d["rows"], "table4.json missing rows"
assert "bucket_us" in d["rows"][0]["cc"], "per-bucket totals missing"
EOF
echo "results/table4.json OK"

echo "==> all checks passed"

//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides the cheap-to-clone immutable byte buffer (`Bytes`) with the
//! subset of the real API the workspace uses: construction from vectors and
//! static slices, `Deref<Target = [u8]>`, length, and equality.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Owned(Arc<Vec<u8>>),
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Owned(Arc::new(data.to_vec())))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Owned(v) => v,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Owned(Arc::new(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_clone_share_contents() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn static_bytes() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.as_ref(), b"abc");
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![97, 98, 99]);
    }
}

//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset used by this workspace's `benches/`: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`
//! and `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is wall-clock `Instant` with a short
//! warm-up; results print as mean ns/iter to stdout — no statistics engine,
//! no HTML reports.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; the shim times every iteration
/// individually regardless of the hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up pass (not recorded).
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    let budget = Duration::from_millis(200);
    let started = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        if started.elapsed() > budget {
            break;
        }
    }
    if b.iters > 0 {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
        println!("bench {id}: {per_iter} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {id}: no iterations recorded");
    }
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn group_runs() {
        benches();
    }
}

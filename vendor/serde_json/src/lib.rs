//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Text layer over the vendored `serde` shim's [`Value`] model: a
//! recursive-descent JSON parser ([`from_str`]) and compact/pretty printers
//! ([`to_string`], [`to_string_pretty`]). Matches real `serde_json` behavior
//! where it matters to this workspace: integers keep 64-bit precision,
//! non-finite floats print as `null`, object keys are emitted in
//! deterministic order.

pub use serde::{Error, Index, Map, Number, Value};

use serde::{Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

/// Converts any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type (commonly [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // Rust's Display for f64 is the shortest round-trippable form,
            // but prints integral values without a fractional part; add `.0`
            // so the value re-parses as a float.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // Real serde_json has no representation for NaN/inf either.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{} at byte {}", msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Decode surrogate pairs; lone surrogates error.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
            }
        } else {
            Number::F64(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let text = r#"{"name":"null rmi","ns":18446744073709551615,"us":26.5,"ok":true,"tags":["a","b\n"],"none":null,"neg":-42}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["ns"].as_u64(), Some(u64::MAX));
        assert_eq!(v["us"].as_f64(), Some(26.5));
        assert_eq!(v["tags"][1].as_str(), Some("b\n"));
        assert_eq!(v["neg"].as_i64(), Some(-42));
        assert!(v["none"].is_null());
        let reparsed: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a":[1,2,{"b":[]}],"c":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_formatting_keeps_type() {
        let v = Value::Number(Number::F64(53.0));
        assert_eq!(to_string(&v).unwrap(), "53.0");
        let back: Value = from_str("53.0").unwrap();
        assert_eq!(back.as_f64(), Some(53.0));
        assert!(back.as_u64().is_none());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}

//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro with `#![proptest_config]`, `Strategy` with
//! `prop_map`/`prop_filter`/`boxed`, `any::<T>()`, `Just`, `prop_oneof!`,
//! `proptest::collection::vec`, tuple strategies, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, chosen for an offline deterministic
//! environment:
//!
//! * case generation is **deterministic**: the RNG is seeded from the test
//!   function's name, so every run explores the same inputs (the simulator
//!   under test is itself deterministic, so reproducibility beats novelty);
//! * there is **no shrinking** — failures report the full generated inputs
//!   instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Per-`proptest!`-block configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error produced by `prop_assert!`-style macros (message text).
pub type TestCaseError = String;

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from a test name (FNV-1a), so each test gets a distinct
    /// but stable input stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe strategy used by [`BoxedStrategy`] and `prop_oneof!`.
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`]: rejection-sampling wrapper.
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.reason);
    }
}

/// Uniform choice between type-erased alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full value space of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix raw bit patterns (hitting NaN/inf/subnormals) with moderate
        // finite values so filtered strategies converge quickly.
        if rng.next_u64() & 3 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            (rng.unit_f64() - 0.5) * 2e6
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Debug, Strategy, TestRng};

    /// Uniform choice from a fixed list of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone + Debug>(Vec<T>);

    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                a, b, ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne! failed: both {:?}",
                a
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The test-defining macro. Each contained function runs `config.cases`
/// deterministic cases; `prop_assert*` failures abort with the generated
/// inputs in the panic message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(::std::stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let mut desc = ::std::string::String::new();
                $(desc.push_str(&::std::format!(
                    "  {} = {:?}\n", ::std::stringify!($arg), &$arg
                ));)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    ::std::panic!(
                        "proptest case {}/{} of {} failed: {}\ninputs:\n{}",
                        case + 1, cfg.cases, ::std::stringify!($name), e, desc
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -4i32..4, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn map_filter_compose(
            v in prop::collection::vec(
                any::<f64>().prop_filter("finite", |x| x.is_finite()), 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.iter().all(|x| x.is_finite()));
            prop_assert!(v.len() < 8, "len {}", v.len());
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u64), 5u64..9, Just(99u64)]) {
            prop_assert!(k == 1 || (5..9).contains(&k) || k == 99);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::{Strategy, TestRng};
        let s = 1u64..1_000_000;
        let mut r1 = TestRng::for_test("abc");
        let mut r2 = TestRng::for_test("abc");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}

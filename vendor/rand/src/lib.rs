//! Offline stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! Deterministic workload generation is all the workspace needs: seeded
//! [`rngs::SmallRng`] plus `gen_range` over integer/float ranges and
//! `gen_bool`. The generator is xoshiro256++ seeded via SplitMix64, the same
//! construction the real `SmallRng` uses on 64-bit targets, so quality is
//! adequate for the paper's synthetic inputs (EM3D graphs, Water particle
//! boxes, LU matrices).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty float range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty float range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Debiased multiply-shift (Lemire); span never exceeds u64.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                let off = (m >> 64) as u64;
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )+};
}

int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the real `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed, per the xoshiro
            // authors' recommendation.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

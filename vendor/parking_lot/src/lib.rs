//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no network access to a registry, so the
//! workspace vendors the small slice of the parking_lot API it actually uses
//! (`Mutex`, `RwLock`, `Condvar` with non-poisoning guards), implemented over
//! `std::sync`. Poisoned locks are transparently recovered — parking_lot has
//! no poisoning, and the simulator's engine re-raises task panics itself.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex that never poisons (parking_lot semantics over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable operating on [`MutexGuard`] by `&mut` reference
/// (parking_lot's signature, vs std's by-value `wait`).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}

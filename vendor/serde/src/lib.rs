//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! Instead of the real crate's visitor-based data model (which needs the
//! `serde_derive` proc macro, unavailable offline), this shim follows the
//! `miniserde` design: one concrete JSON-shaped [`Value`] tree, a
//! [`Serialize`] trait mapping types into it, a [`Deserialize`] trait mapping
//! back out, and declarative [`impl_serialize!`] / [`impl_deserialize!`]
//! macros standing in for `#[derive(Serialize, Deserialize)]` on plain
//! structs. Object keys use a `BTreeMap`, so serialized output is
//! deterministic — a property the simulator's determinism tests rely on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Map type used for JSON objects (ordered, so output is deterministic).
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Integers keep full 64-bit precision (virtual-time
/// nanoseconds overflow an `f64` mantissa past 2^53).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(n) => Some(n as f64),
            Number::I64(n) => Some(n as f64),
            Number::F64(n) => Some(n),
        }
    }
}

/// The JSON data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Lookup key for [`Value::get`]: a string (object key) or usize (array
/// position), mirroring `serde_json`'s sealed `Index` trait.
pub trait Index {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

/// Deserialization failure (path + message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can map themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error("expected bool".into()))
    }
}

macro_rules! ser_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error(concat!("expected ", stringify!($t)).into()))
            }
        }
    )+};
}

macro_rules! ser_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error(concat!("expected ", stringify!($t)).into()))
            }
        }
    )+};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error("expected f64".into()))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error("expected string".into()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error("expected array".into()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error("expected array".into()))?;
        if items.len() != N {
            return Err(Error(format!("expected array of length {N}")));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

/// Implements [`Serialize`] for a struct, in lieu of `#[derive(Serialize)]`:
///
/// ```ignore
/// serde::impl_serialize!(Stats { bucket_ns, polls, handlers_run });
/// ```
#[macro_export]
macro_rules! impl_serialize {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let mut map = $crate::Map::new();
                $(map.insert(
                    ::std::stringify!($field).to_string(),
                    $crate::Serialize::to_value(&self.$field),
                );)+
                $crate::Value::Object(map)
            }
        }
    };
}

/// Implements [`Deserialize`] for a struct, in lieu of
/// `#[derive(Deserialize)]`. Every listed field must be present in the
/// object.
#[macro_export]
macro_rules! impl_deserialize {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                let map = v
                    .as_object()
                    .ok_or_else(|| $crate::Error("expected object".into()))?;
                ::std::result::Result::Ok(Self {
                    $($field: $crate::Deserialize::from_value(
                        map.get(::std::stringify!($field)).ok_or_else(|| {
                            $crate::Error(::std::format!(
                                "missing field '{}'",
                                ::std::stringify!($field)
                            ))
                        })?,
                    )?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Default)]
    struct Point {
        x: u64,
        y: f64,
        label: String,
    }

    impl_serialize!(Point { x, y, label });
    impl_deserialize!(Point { x, y, label });

    #[test]
    fn struct_round_trip() {
        let p = Point {
            x: u64::MAX - 7,
            y: -2.5,
            label: "origin".into(),
        };
        let v = p.to_value();
        assert_eq!(v["x"].as_u64(), Some(u64::MAX - 7));
        assert_eq!(Point::from_value(&v).unwrap(), p);
    }

    #[test]
    fn index_and_get() {
        let v = Value::Array(vec![Value::Bool(true), Value::Null]);
        assert_eq!(v[0].as_bool(), Some(true));
        assert!(v[1].is_null());
        assert!(v.get(5).is_none());
        assert!(v["nope"].is_null());
    }

    #[test]
    fn arrays_and_options() {
        let a = [1u64, 2, 3];
        let v = a.to_value();
        let back: [u64; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }
}

//! Property-based tests over the whole stack (proptest). Case counts are
//! kept modest because every case runs a full simulation.

use mpmd_repro::apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_repro::apps::lu::{self, LuParams};
use mpmd_repro::ccxx::{self, CallMode, CcxxConfig, Marshal, MarshalBuf, UnmarshalBuf};
use mpmd_repro::sim::{Bucket, CostModel, Sim};
use mpmd_repro::splitc;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mixed argument sequence marshals and unmarshals identically
    /// through a real RMI.
    #[test]
    fn marshalled_rmi_round_trips(
        ints in proptest::collection::vec(any::<u32>(), 0..6),
        doubles in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..16),
        flag in any::<bool>(),
    ) {
        let ints2 = ints.clone();
        let doubles2 = doubles.clone();
        type Payload = (Vec<u32>, Vec<f64>, bool);
        let seen: Arc<Mutex<Option<Payload>>> = Arc::new(Mutex::new(None));
        let seen2 = Arc::clone(&seen);
        Sim::new(2).run(move |ctx| {
            ccxx::init(&ctx, CcxxConfig::tham());
            let n_ints = ints2.len();
            let s3 = Arc::clone(&seen2);
            ccxx::register_method(&ctx, "mixed", move |ctx, args| {
                let data = args.data.expect("args expected");
                let mut u = UnmarshalBuf::new(&data);
                let mut got_ints = Vec::new();
                for _ in 0..n_ints {
                    got_ints.push(u.next::<u32, _>(ctx));
                }
                let got_doubles = u.next::<Vec<f64>, _>(ctx);
                let got_flag = u.next::<bool, _>(ctx);
                assert_eq!(u.remaining(), 0);
                *s3.lock() = Some((got_ints, got_doubles, got_flag));
                ccxx::RmiRet::null()
            });
            ccxx::barrier(&ctx);
            if ctx.node() == 0 {
                let mut b = MarshalBuf::new();
                for v in &ints2 {
                    b.push(&ctx, v);
                }
                b.push(&ctx, &doubles2);
                b.push(&ctx, &flag);
                ccxx::rmi(&ctx, 1, "mixed", &[], Some(b), CallMode::Threaded);
            }
            ccxx::finalize(&ctx);
        });
        let got = seen.lock().take().expect("method ran");
        prop_assert_eq!(got.0, ints);
        prop_assert_eq!(got.1, doubles);
        prop_assert_eq!(got.2, flag);
    }

    /// All EM3D versions, in both languages, compute exactly the sequential
    /// reference for random graphs.
    #[test]
    fn em3d_versions_agree_on_random_graphs(
        seed in any::<u64>(),
        degree in 2usize..6,
        frac in 0.0f64..=1.0,
        steps in 1usize..3,
    ) {
        let p = Em3dParams {
            graph_nodes: 80,
            degree,
            procs: 4,
            steps,
            remote_frac: frac,
            seed,
        };
        let want = em3d::em3d_reference(&p);
        let sc = em3d::run_splitc(&p, Em3dVersion::Ghost);
        prop_assert_eq!(&sc.output.e, &want.e);
        let cc = em3d::run_ccxx(&p, Em3dVersion::Bulk, CcxxConfig::tham(), CostModel::default());
        prop_assert_eq!(&cc.output.e, &want.e);
    }

    /// Distributed LU equals the blocked reference bitwise and reconstructs
    /// the original matrix, for random seeds and shapes.
    #[test]
    fn lu_factors_random_matrices(
        seed in any::<u64>(),
        shape in prop::sample::select(vec![(16usize, 4usize), (24, 4), (32, 8)]),
    ) {
        let p = LuParams { n: shape.0, block: shape.1, procs: 4, seed };
        let want = lu::lu_blocked_reference(&p);
        let run = lu::run_splitc(&p);
        prop_assert_eq!(&run.output.factored, &want);
        let original = lu::generate_matrix(&p);
        let err = lu::reconstruction_error(&original, &run.output.factored, p.n);
        prop_assert!(err < 1e-8, "reconstruction error {}", err);
    }

    /// The simulator is a deterministic function of the program: random
    /// charge/message workloads produce identical reports twice.
    #[test]
    fn simulator_is_deterministic(
        charges in proptest::collection::vec(1u64..10_000, 1..20),
        fanout in 1usize..4,
    ) {
        let run = |charges: Vec<u64>, fanout: usize| {
            Sim::new(4).run(move |ctx| {
                splitc::init(&ctx);
                let a = splitc::all_spread_alloc(&ctx, 8, 0.0);
                splitc::barrier(&ctx);
                for (i, c) in charges.iter().enumerate() {
                    ctx.charge(Bucket::Cpu, *c);
                    if i % 2 == 0 {
                        for f in 1..=fanout {
                            let t = (ctx.node() + f) % ctx.nodes();
                            splitc::put(&ctx, a.node_chunk(t).add(i % 8), *c as f64);
                        }
                        splitc::sync(&ctx);
                    }
                }
                splitc::barrier(&ctx);
            })
        };
        let a = run(charges.clone(), fanout);
        let b = run(charges, fanout);
        prop_assert_eq!(a.clocks, b.clocks);
        prop_assert_eq!(a.stats, b.stats);
    }

    /// Split-phase puts to distinct locations all land, regardless of issue
    /// order (linearization per location).
    #[test]
    fn split_phase_puts_all_land(
        values in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 1..12),
    ) {
        let values2 = values.clone();
        let got: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let g2 = Arc::clone(&got);
        Sim::new(2).run(move |ctx| {
            splitc::init(&ctx);
            let a = splitc::all_spread_alloc(&ctx, values2.len(), 0.0);
            splitc::barrier(&ctx);
            if ctx.node() == 0 {
                for (i, v) in values2.iter().enumerate() {
                    splitc::put(&ctx, a.node_chunk(1).add(i), *v);
                }
                splitc::sync(&ctx);
            }
            splitc::barrier(&ctx);
            if ctx.node() == 1 {
                *g2.lock() = splitc::with_local(&ctx, a.region, |v| v.clone());
            }
            splitc::barrier(&ctx);
        });
        let final_vals = got.lock().clone();
        prop_assert_eq!(final_vals, values);
    }

    /// FlatF64s and Vec<f64> marshal to interchangeable wire bytes.
    #[test]
    fn flat_and_elementwise_marshal_agree(
        vals in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..50),
    ) {
        let mut a = Vec::new();
        vals.write(&mut a);
        let mut b = Vec::new();
        ccxx::FlatF64s(vals.clone()).write(&mut b);
        prop_assert_eq!(a, b.clone());
        let mut inp = b.as_slice();
        let back = ccxx::FlatF64s::read(&mut inp);
        prop_assert_eq!(back.0, vals);
    }
}

//! Beyond the paper's 4-processor runs: the runtimes and applications must
//! work unchanged on other machine sizes (the paper's SP had many more
//! nodes; 4 was the evaluation slice).

use mpmd_repro::apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_repro::apps::lu::{self, LuParams};
use mpmd_repro::apps::water::{self, WaterParams, WaterVersion};
use mpmd_repro::ccxx::{self, CallMode, CcxxConfig};
use mpmd_repro::sim::{CostModel, Sim};
use mpmd_repro::splitc;

#[test]
fn em3d_runs_on_two_and_eight_processors() {
    for procs in [2usize, 8] {
        let p = Em3dParams {
            graph_nodes: 160,
            degree: 4,
            procs,
            steps: 2,
            remote_frac: 0.6,
            seed: 15,
        };
        let want = em3d::em3d_reference(&p);
        for v in Em3dVersion::ALL {
            let sc = em3d::run_splitc(&p, v);
            assert_eq!(
                sc.output.e,
                want.e,
                "split-c {} on {procs} procs",
                v.label()
            );
            let cc = em3d::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default());
            assert_eq!(cc.output.e, want.e, "cc++ {} on {procs} procs", v.label());
        }
    }
}

#[test]
fn water_runs_on_eight_processors() {
    let p = WaterParams {
        n_mol: 32,
        procs: 8,
        steps: 1,
        seed: 77,
        box_size: 8.0,
    };
    let (want, energy) = water::water_reference(&p);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for v in WaterVersion::ALL {
        let run = water::run_splitc(&p, v);
        assert!(close(run.output.energy, energy), "{}", v.label());
        assert!(run
            .output
            .pos
            .iter()
            .zip(&want.pos)
            .all(|(a, b)| close(*a, *b)));
    }
}

#[test]
fn lu_runs_on_eight_processors() {
    let p = LuParams {
        n: 64,
        block: 8,
        procs: 8,
        seed: 3,
    };
    let want = lu::lu_blocked_reference(&p);
    assert_eq!(lu::run_splitc(&p).output.factored, want);
    assert_eq!(
        lu::run_ccxx(&p, CcxxConfig::tham(), CostModel::default())
            .output
            .factored,
        want
    );
}

#[test]
fn barrier_and_reductions_scale_to_sixteen_nodes() {
    Sim::new(16).run(|ctx| {
        splitc::init(&ctx);
        for _ in 0..3 {
            splitc::barrier(&ctx);
        }
        let sum = splitc::reduce_sum_u64(&ctx, ctx.node() as u64);
        assert_eq!(sum, (0..16).sum::<u64>());
    });
}

#[test]
fn rmi_all_to_all_on_eight_nodes() {
    let r = Sim::new(8).run(|ctx| {
        ccxx::init(&ctx, CcxxConfig::tham());
        let region = ccxx::alloc_region(&ctx, 8, 0.0);
        ccxx::barrier(&ctx);
        // Everyone atomically adds its id+1 into everyone's slot 0.
        for dst in 0..ctx.nodes() {
            if dst != ctx.node() {
                ccxx::atomic_add(
                    &ctx,
                    ccxx::CxPtr {
                        node: dst,
                        region,
                        offset: 0,
                    },
                    (ctx.node() + 1) as f64,
                );
            }
        }
        ccxx::barrier(&ctx);
        let mine = ccxx::with_local(&ctx, region, |v| v[0]);
        let expect: f64 = (1..=8).map(|x| x as f64).sum::<f64>() - (ctx.node() + 1) as f64;
        assert_eq!(mine, expect);
        // And a round of null RMIs to the next node for good measure.
        let next = (ctx.node() + 1) % ctx.nodes();
        for mode in [CallMode::Simple, CallMode::Threaded] {
            ccxx::rmi(&ctx, next, ccxx::M_NULL, &[], None, mode);
        }
        ccxx::finalize(&ctx);
    });
    assert_eq!(r.nodes(), 8);
}

//! Cross-crate application correctness: every distributed implementation
//! agrees with its sequential reference across sweeps of parameters.

use mpmd_repro::apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_repro::apps::lu::{self, LuParams};
use mpmd_repro::apps::water::{self, WaterParams, WaterVersion};
use mpmd_repro::ccxx::CcxxConfig;
use mpmd_repro::nexus;
use mpmd_repro::sim::CostModel;

#[test]
fn em3d_all_versions_all_langs_agree_across_fractions() {
    for frac in [0.0, 0.25, 0.75, 1.0] {
        let p = Em3dParams {
            graph_nodes: 120,
            degree: 5,
            procs: 4,
            steps: 2,
            remote_frac: frac,
            seed: 21,
        };
        let want = em3d::em3d_reference(&p);
        for v in Em3dVersion::ALL {
            let sc = em3d::run_splitc(&p, v);
            assert_eq!(sc.output.e, want.e, "split-c {} at {frac}", v.label());
            assert_eq!(sc.output.h, want.h, "split-c {} at {frac}", v.label());
            let cc = em3d::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default());
            assert_eq!(cc.output.e, want.e, "cc++ {} at {frac}", v.label());
            assert_eq!(cc.output.h, want.h, "cc++ {} at {frac}", v.label());
        }
    }
}

#[test]
fn em3d_is_correct_under_the_nexus_runtime_too() {
    // The Nexus baseline changes costs, never results.
    let p = Em3dParams {
        graph_nodes: 80,
        degree: 4,
        procs: 4,
        steps: 2,
        remote_frac: 0.5,
        seed: 5,
    };
    let want = em3d::em3d_reference(&p);
    let run = em3d::run_ccxx(
        &p,
        Em3dVersion::Ghost,
        nexus::nexus_config(),
        nexus::nexus_sim_cost_model(),
    );
    assert_eq!(run.output.e, want.e);
}

#[test]
fn em3d_is_correct_under_every_ablation_config() {
    let p = Em3dParams {
        graph_nodes: 80,
        degree: 4,
        procs: 4,
        steps: 2,
        remote_frac: 0.6,
        seed: 9,
    };
    let want = em3d::em3d_reference(&p);
    for cfg in [
        CcxxConfig::tham().without_stub_caching(),
        CcxxConfig::tham().without_persistent_buffers(),
        CcxxConfig::tham().with_return_buffer_passing(),
        CcxxConfig::tham().with_interrupts(mpmd_repro::sim::us(40.0)),
    ] {
        let run = em3d::run_ccxx(&p, Em3dVersion::Bulk, cfg.clone(), CostModel::default());
        assert_eq!(run.output.e, want.e, "config {cfg:?}");
    }
}

#[test]
fn water_agrees_for_odd_sizes_and_multiple_steps() {
    for (n, steps) in [(8, 3), (16, 2), (24, 1)] {
        let p = WaterParams {
            n_mol: n,
            procs: 4,
            steps,
            seed: 31,
            box_size: 8.0,
        };
        let (want, energy) = water::water_reference(&p);
        for v in WaterVersion::ALL {
            let run = water::run_splitc(&p, v);
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
            assert!(
                run.output
                    .pos
                    .iter()
                    .zip(&want.pos)
                    .all(|(a, b)| close(*a, *b)),
                "{} n={n} steps={steps}",
                v.label()
            );
            assert!(close(run.output.energy, energy));
        }
    }
}

#[test]
fn lu_matches_reference_for_various_shapes() {
    for (n, b, procs) in [(16, 4, 4), (32, 8, 2), (40, 8, 4), (48, 16, 4)] {
        let p = LuParams {
            n,
            block: b,
            procs,
            seed: n as u64,
        };
        let want = lu::lu_blocked_reference(&p);
        let sc = lu::run_splitc(&p);
        assert_eq!(sc.output.factored, want, "sc-lu n={n} b={b} procs={procs}");
        let cc = lu::run_ccxx(&p, CcxxConfig::tham(), CostModel::default());
        assert_eq!(cc.output.factored, want, "cc-lu n={n} b={b} procs={procs}");
    }
}

#[test]
fn lu_reconstruction_is_numerically_sound_at_scale() {
    let p = LuParams {
        n: 128,
        block: 16,
        procs: 4,
        seed: 1,
    };
    let original = lu::generate_matrix(&p);
    let run = lu::run_splitc(&p);
    let err = lu::reconstruction_error(&original, &run.output.factored, p.n);
    assert!(err < 1e-8, "reconstruction error {err}");
}

#[test]
fn runs_are_deterministic_across_repetitions() {
    let p = Em3dParams {
        graph_nodes: 80,
        degree: 4,
        procs: 4,
        steps: 2,
        remote_frac: 0.5,
        seed: 77,
    };
    let a = em3d::run_splitc(&p, Em3dVersion::Ghost);
    let b = em3d::run_splitc(&p, Em3dVersion::Ghost);
    assert_eq!(a.breakdown.elapsed, b.breakdown.elapsed);
    assert_eq!(a.breakdown.counts, b.breakdown.counts);
    assert_eq!(a.output.e, b.output.e);
}

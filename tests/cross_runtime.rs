//! Integration tests spanning the whole stack: simulator → AM → both
//! language runtimes, exercised through the facade crate exactly as a
//! downstream user would.

use mpmd_repro::am;
use mpmd_repro::ccxx::{self, CallMode, CcxxConfig, CxPtr};
use mpmd_repro::sim::{to_us, us, Bucket, Sim};
use mpmd_repro::splitc::{self};
use mpmd_repro::threads;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn both_runtimes_coexist_on_one_machine() {
    // A single simulated machine can host Split-C style traffic and CC++
    // RMIs side by side (they share the AM layer; the profile must agree,
    // so this uses the CC++ profile for both kinds of handlers).
    Sim::new(2).run(|ctx| {
        ccxx::init(&ctx, CcxxConfig::tham());
        let region = ccxx::alloc_region(&ctx, 8, ctx.node() as f64);
        ccxx::barrier(&ctx);
        if ctx.node() == 0 {
            // RMI path.
            let r = ccxx::rmi(&ctx, 1, ccxx::M_NULL, &[], None, CallMode::Blocking);
            assert_eq!(r.words, [0; 4]);
            // GP path into the same region.
            let v = ccxx::gp_read(
                &ctx,
                CxPtr {
                    node: 1,
                    region,
                    offset: 0,
                },
            );
            assert_eq!(v, 1.0);
        }
        ccxx::finalize(&ctx);
    });
}

#[test]
fn split_c_global_ops_compose_end_to_end() {
    let r = Sim::new(4).run(|ctx| {
        splitc::init(&ctx);
        let a = splitc::all_spread_alloc(&ctx, 8, 0.0);
        splitc::barrier(&ctx);
        // Everyone writes its id into slot 0 of the next node (ring).
        let next = (ctx.node() + 1) % ctx.nodes();
        splitc::write(&ctx, a.node_chunk(next), ctx.node() as f64);
        splitc::barrier(&ctx);
        // Split-phase-read it back from the previous node.
        let prev = (ctx.node() + ctx.nodes() - 1) % ctx.nodes();
        let h = splitc::get(&ctx, a.node_chunk(ctx.node()));
        splitc::sync(&ctx);
        assert_eq!(h.value(), prev as f64);
        // Sum of everyone's id via reduction.
        let total = splitc::reduce_sum_u64(&ctx, ctx.node() as u64);
        assert_eq!(total, 6);
        splitc::barrier(&ctx);
    });
    assert_eq!(r.total_stats().thread_creates, 0, "Split-C never threads");
}

#[test]
fn mpmd_server_with_spmd_like_clients() {
    // MPMD: node 0 runs a different program than nodes 1..N.
    let served = Arc::new(AtomicU64::new(0));
    let s2 = Arc::clone(&served);
    Sim::new(3).run(move |ctx| {
        ccxx::init(&ctx, CcxxConfig::tham());
        if ctx.node() == 0 {
            let hits = Arc::new(AtomicU64::new(0));
            let h2 = Arc::clone(&hits);
            ccxx::register_method(&ctx, "count", move |_ctx, _args| {
                let n = h2.fetch_add(1, Ordering::AcqRel) + 1;
                ccxx::RmiRet::of_words([n, 0, 0, 0])
            });
            ccxx::barrier(&ctx);
            let h3 = Arc::clone(&hits);
            ccxx::spin_until(&ctx, move || h3.load(Ordering::Acquire) >= 10);
            s2.store(hits.load(Ordering::Acquire), Ordering::Release);
        } else {
            ccxx::barrier(&ctx);
            for _ in 0..5 {
                ccxx::rmi(&ctx, 0, "count", &[], None, CallMode::Atomic);
            }
        }
        ccxx::finalize(&ctx);
    });
    assert_eq!(served.load(Ordering::Acquire), 10);
}

#[test]
fn am_round_trips_match_calibration_through_the_facade() {
    // End-to-end sanity: the calibrated latencies survive the full stack.
    let rtt = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&rtt);
    Sim::new(2).run(move |ctx| {
        splitc::init(&ctx);
        let a = splitc::all_spread_alloc(&ctx, 1, 2.5);
        splitc::barrier(&ctx);
        if ctx.node() == 0 {
            let t0 = ctx.now();
            let v = splitc::read(&ctx, a.node_chunk(1));
            assert_eq!(v, 2.5);
            r2.store(ctx.now() - t0, Ordering::Release);
        }
        splitc::barrier(&ctx);
    });
    let got = to_us(rtt.load(Ordering::Acquire));
    assert!((got - 57.0).abs() < 2.0, "GP read = {got} µs (Table 4: 57)");
}

#[test]
fn threads_and_am_interleave_without_losing_messages() {
    // Spawned threads, condition variables, and message traffic all at
    // once: a small stress of the scheduling core.
    Sim::new(2).run(|ctx| {
        am::init(&ctx, am::NetProfile::sp_am_splitc());
        am::register_barrier_handlers(&ctx);
        let got = Arc::new(AtomicU64::new(0));
        let g2 = Arc::clone(&got);
        am::register(&ctx, 77, move |_ctx, m| {
            g2.fetch_add(m.args[0], Ordering::AcqRel);
        });
        am::barrier(&ctx);
        if ctx.node() == 0 {
            let mut handles = Vec::new();
            for i in 1..=10u64 {
                handles.push(threads::spawn(&ctx, "sender", move |c| {
                    am::endpoint(&c).to(1).handler(77).args([i, 0, 0, 0]).send();
                }));
            }
            for h in handles {
                h.join(&ctx);
            }
        }
        am::barrier(&ctx);
        if ctx.node() == 1 {
            assert_eq!(got.load(Ordering::Acquire), 55);
        }
        am::barrier(&ctx);
    });
}

#[test]
fn nexus_runtime_is_dramatically_slower_end_to_end() {
    fn one_rmi(cfg: CcxxConfig, cost: mpmd_repro::sim::CostModel) -> u64 {
        let out = Arc::new(AtomicU64::new(0));
        let o2 = Arc::clone(&out);
        Sim::new(2).cost_model(cost).run(move |ctx| {
            ccxx::init(&ctx, cfg.clone());
            ccxx::barrier(&ctx);
            if ctx.node() == 0 {
                // warm (as warm as Nexus gets — no caches there)
                ccxx::rmi(&ctx, 1, ccxx::M_NULL, &[], None, CallMode::Threaded);
                let t0 = ctx.now();
                ccxx::rmi(&ctx, 1, ccxx::M_NULL, &[], None, CallMode::Threaded);
                o2.store(ctx.now() - t0, Ordering::Release);
            }
            ccxx::finalize(&ctx);
        });
        out.load(Ordering::Acquire)
    }
    let tham = one_rmi(CcxxConfig::tham(), mpmd_repro::sim::CostModel::default());
    let nexus = one_rmi(
        mpmd_repro::nexus::nexus_config(),
        mpmd_repro::nexus::nexus_sim_cost_model(),
    );
    assert!(
        nexus > 20 * tham,
        "nexus {} µs vs tham {} µs",
        to_us(nexus),
        to_us(tham)
    );
    assert!(nexus > us(3_000.0), "nexus null RMI should be milliseconds");
}

#[test]
fn charged_buckets_are_conserved_across_the_stack() {
    // busy_total == sum of buckets + residual(net) by construction; check
    // the identity holds for a non-trivial mixed workload.
    let r = Sim::new(2).run(|ctx| {
        ccxx::init(&ctx, CcxxConfig::tham());
        let region = ccxx::alloc_region(&ctx, 20, 1.0);
        ccxx::barrier(&ctx);
        if ctx.node() == 0 {
            ccxx::bulk_get(
                &ctx,
                CxPtr {
                    node: 1,
                    region,
                    offset: 0,
                },
                20,
            );
            ccxx::charge_cpu(&ctx, 5_000);
            ccxx::gp_write(
                &ctx,
                CxPtr {
                    node: 1,
                    region,
                    offset: 3,
                },
                9.0,
            );
        }
        ccxx::finalize(&ctx);
    });
    let busy = r.busy_total();
    let parts: u64 = [
        Bucket::Cpu,
        Bucket::ThreadMgmt,
        Bucket::ThreadSync,
        Bucket::Runtime,
    ]
    .iter()
    .map(|&b| r.bucket_total(b))
    .sum::<u64>()
        + r.net_component();
    assert_eq!(busy, parts);
}

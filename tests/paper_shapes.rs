//! The headline shape assertions: who wins, by roughly what factor, and
//! where the crossovers fall — asserted as inequalities, as DESIGN.md
//! prescribes. These run at reduced scale to stay fast; the full-scale
//! numbers are in EXPERIMENTS.md (regenerate with the mpmd-bench binaries).

use mpmd_repro::apps::em3d::{self, Em3dParams, Em3dVersion};
use mpmd_repro::apps::lu::{self, LuParams};
use mpmd_repro::apps::water::{self, WaterParams, WaterVersion};
use mpmd_repro::ccxx::CcxxConfig;
use mpmd_repro::nexus;
use mpmd_repro::sim::CostModel;

fn em3d_params(frac: f64) -> Em3dParams {
    Em3dParams {
        graph_nodes: 160,
        degree: 8,
        procs: 4,
        steps: 2,
        remote_frac: frac,
        seed: 42,
    }
}

#[test]
fn em3d_ccxx_within_factor_of_three_of_splitc() {
    // Paper: "CC++ applications perform within a factor of 2 to 6 of
    // Split-C"; EM3D specifically converges to ~2 (base) and ~2.5 (ghost).
    for v in Em3dVersion::ALL {
        let p = em3d_params(1.0);
        let sc = em3d::run_splitc(&p, v).breakdown.elapsed as f64;
        let cc = em3d::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default())
            .breakdown
            .elapsed as f64;
        let ratio = cc / sc;
        assert!(
            (1.0..3.5).contains(&ratio),
            "{}: cc++/split-c = {ratio:.2}",
            v.label()
        );
    }
}

#[test]
fn em3d_version_optimizations_benefit_both_languages() {
    // "the optimizations used in all three versions of EM3D benefit
    // Split-C and CC++ equally": ghost ≪ base, bulk ≪ ghost, in both.
    let p = em3d_params(1.0);
    {
        let run = em3d::run_splitc;
        let base = run(&p, Em3dVersion::Base).breakdown.elapsed;
        let ghost = run(&p, Em3dVersion::Ghost).breakdown.elapsed;
        let bulk = run(&p, Em3dVersion::Bulk).breakdown.elapsed;
        assert!(ghost * 2 < base, "ghost should be ≫ faster than base");
        assert!(bulk * 2 < ghost, "bulk should be ≫ faster than ghost");
    }
    let base = em3d::run_ccxx(
        &p,
        Em3dVersion::Base,
        CcxxConfig::tham(),
        CostModel::default(),
    )
    .breakdown
    .elapsed;
    let ghost = em3d::run_ccxx(
        &p,
        Em3dVersion::Ghost,
        CcxxConfig::tham(),
        CostModel::default(),
    )
    .breakdown
    .elapsed;
    let bulk = em3d::run_ccxx(
        &p,
        Em3dVersion::Bulk,
        CcxxConfig::tham(),
        CostModel::default(),
    )
    .breakdown
    .elapsed;
    assert!(ghost * 2 < base);
    assert!(bulk * 2 < ghost);
}

#[test]
fn em3d_base_gap_grows_then_stabilizes_with_remote_fraction() {
    // "As the percentage of remote edges increases, the relative
    // performance of CC++ converges to about a factor of 2 of Split-C."
    let ratio_at = |frac: f64| {
        let p = em3d_params(frac);
        let sc = em3d::run_splitc(&p, Em3dVersion::Base).breakdown.elapsed as f64;
        let cc = em3d::run_ccxx(
            &p,
            Em3dVersion::Base,
            CcxxConfig::tham(),
            CostModel::default(),
        )
        .breakdown
        .elapsed as f64;
        cc / sc
    };
    let r10 = ratio_at(0.1);
    let r100 = ratio_at(1.0);
    assert!((1.5..3.0).contains(&r100), "100% remote ratio = {r100:.2}");
    // At low remote fractions CC++ pays its local-GP-deref overhead, so it
    // is still clearly slower.
    assert!(r10 > 1.3, "10% remote ratio = {r10:.2}");
}

#[test]
fn water_prefetch_narrows_the_gap() {
    let p = WaterParams {
        n_mol: 32,
        procs: 4,
        steps: 1,
        seed: 3,
        box_size: 8.0,
    };
    let gap = |v: WaterVersion| {
        let sc = water::run_splitc(&p, v).breakdown.elapsed as f64;
        let cc = water::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default())
            .breakdown
            .elapsed as f64;
        cc / sc
    };
    let atomic = gap(WaterVersion::Atomic);
    let prefetch = gap(WaterVersion::Prefetch);
    assert!(atomic > 1.4, "water-atomic gap = {atomic:.2}");
    assert!(
        prefetch < atomic,
        "prefetch should narrow the gap: {prefetch:.2} vs {atomic:.2}"
    );
}

#[test]
fn lu_rmi_version_pays_for_blocking_transfers() {
    let p = LuParams {
        n: 64,
        block: 8,
        procs: 4,
        seed: 8,
    };
    let sc = lu::run_splitc(&p);
    let cc = lu::run_ccxx(&p, CcxxConfig::tham(), CostModel::default());
    let ratio = cc.breakdown.elapsed as f64 / sc.breakdown.elapsed as f64;
    assert!(
        (1.5..6.0).contains(&ratio),
        "cc-lu/sc-lu = {ratio:.2} (paper 3.6)"
    );
    // "The net time in cc-lu is about 2 times higher than in sc-lu."
    let net_ratio = cc.breakdown.net as f64 / sc.breakdown.net.max(1) as f64;
    assert!(net_ratio > 1.4, "net ratio = {net_ratio:.2}");
}

#[test]
fn nexus_speedups_fall_in_the_papers_band() {
    // "CC++/ThAM yields improvements of 5 to 35-fold over CC++/Nexus."
    let p = em3d_params(1.0);
    let tham = em3d::run_ccxx(
        &p,
        Em3dVersion::Ghost,
        CcxxConfig::tham(),
        CostModel::default(),
    )
    .breakdown
    .elapsed as f64;
    let nex = em3d::run_ccxx(
        &p,
        Em3dVersion::Ghost,
        nexus::nexus_config(),
        nexus::nexus_sim_cost_model(),
    )
    .breakdown
    .elapsed as f64;
    let speedup = nex / tham;
    assert!(
        (5.0..60.0).contains(&speedup),
        "ThAM over Nexus = {speedup:.1}x"
    );
}

#[test]
fn splitc_beats_ccxx_everywhere_but_never_by_an_order_of_magnitude() {
    // The paper's thesis: the MPMD penalty is a small factor, not the
    // order-of-magnitude gap of pre-ThAM systems.
    let p = em3d_params(0.7);
    for v in Em3dVersion::ALL {
        let sc = em3d::run_splitc(&p, v).breakdown.elapsed as f64;
        let cc = em3d::run_ccxx(&p, v, CcxxConfig::tham(), CostModel::default())
            .breakdown
            .elapsed as f64;
        let ratio = cc / sc;
        assert!(
            ratio >= 1.0,
            "{}: split-c should win ({ratio:.2})",
            v.label()
        );
        assert!(
            ratio < 8.0,
            "{}: gap should be small ({ratio:.2})",
            v.label()
        );
    }
}
